// §4.1/§6.4 ablation: collaboration (distributed scanning) over the
// years — logical scans split across multiple hosts, their member
// counts, and the share of campaigns that belong to one.
#include <iostream>

#include "bench_common.h"
#include "core/collaboration.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§4.1/§6.4 — distributed scans (sharding) over the years",
                      "§4.1, §6.4", options);

  report::Table table({"year", "logical multi-host scans", "largest (members)",
                       "collaborating campaigns", "share of all campaigns"});
  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  std::vector<double> years;
  std::vector<double> shares;
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto census = core::detect_collaborations(run.result.campaigns);
    table.add_row({std::to_string(year), std::to_string(census.scans.size()),
                   census.scans.empty() ? "-"
                                        : std::to_string(census.scans[0].members),
                   std::to_string(census.collaborating_campaigns),
                   report::percent(census.collaborating_fraction())});
    years.push_back(year);
    shares.push_back(census.collaborating_fraction());

    if (year == 2024 && !census.scans.empty()) {
      std::cout << "largest 2024 collaborations:\n";
      for (std::size_t i = 0; i < std::min<std::size_t>(4, census.scans.size()); ++i) {
        const auto& scan = census.scans[i];
        std::cout << "  " << scan.subnet.to_string() << "/24 x" << scan.members
                  << " on port " << scan.port << " ("
                  << fingerprint::to_string(scan.tool) << "), joint coverage "
                  << report::percent(scan.joint_coverage) << ", per member "
                  << report::percent(scan.mean_member_coverage, 2) << "\n";
      }
      std::cout << "\n";
    }
  }
  std::cout << table;

  if (years.size() >= 3) {
    const auto trend = stats::pearson(years, shares);
    std::cout << "\ncollaboration trend: R = " << report::fixed(trend.r, 2)
              << ", p = " << report::fixed(trend.p_value, 4) << "\n";
  }
  std::cout << "\npaper shape: the number of scans split over multiple hosts rises\n"
               "over the years; per-member coverage modes (e.g. ~0.65% = 1/256 of\n"
               "IPv4 slices, counting a /24 of collaborators) reveal the slicing.\n";
  return 0;
}
