// Figure 3: CDF of the number of distinct ports targeted per source IP,
// per year — the growth of block scanning.
#include <iostream>

#include "bench_common.h"
#include "report/series.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 3 — ports scanned per source IP", "§5.1, Fig. 3", options);

  report::Table table({"year", "1 port", "(paper)", ">=3 ports", ">=5 ports",
                       ">=10 ports"});
  // Paper anchors: 83% single-port in 2015, 74% in 2020, 65% in 2022.
  const auto paper_single = [](int year) -> std::string {
    switch (year) {
      case 2015:
        return "83%";
      case 2020:
        return "74%";
      case 2022:
        return "65%";
      default:
        return "-";
    }
  };

  std::vector<double> years;
  std::vector<double> multi_port_share;
  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const stats::Ecdf ecdf(run.tally.ports_per_source_sample());
    if (ecdf.empty()) continue;
    const double single = ecdf.fraction_at_or_below(1.0);
    const double ge3 = 1.0 - ecdf.fraction_at_or_below(2.0);
    table.add_row({std::to_string(year), report::percent(single), paper_single(year),
                   report::percent(ge3),
                   report::percent(1.0 - ecdf.fraction_at_or_below(4.0)),
                   report::percent(1.0 - ecdf.fraction_at_or_below(9.0))});
    years.push_back(year);
    multi_port_share.push_back(ge3);
  }
  std::cout << table;

  const auto trend = stats::pearson(years, multi_port_share);
  std::cout << "\ntrend of the >=3-port share across years: R = "
            << report::fixed(trend.r, 2) << ", p = " << report::fixed(trend.p_value, 4)
            << "  (paper: R = 0.88, p < 0.05)\n";
  return 0;
}
