// Quickstart: the full telescope-analytics loop in one file.
//
//   1. simulate a small scanning ecosystem aimed at a telescope,
//   2. write the traffic to a classic pcap file,
//   3. read it back (as you would a real capture),
//   4. detect campaigns, fingerprint tools, print the summary.
//
// Run:  ./quickstart [capture.pcap]
#include <filesystem>
#include <iostream>

#include "core/analysis_summary.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "pcap/pcap.h"
#include "report/table.h"
#include "simgen/generator.h"
#include "telescope/telescope.h"

using namespace synscan;

int main(int argc, char** argv) {
  const std::filesystem::path capture_path =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "quickstart.pcap";

  // --- 1. A telescope and a workload -----------------------------------
  // One /20 of dark space; Telnet dropped at the ingress (like the
  // paper's telescope after Mirai).
  const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {{23, 0}});

  simgen::YearConfig workload;
  workload.year = 2024;
  workload.window_days = 1;
  workload.seed = 7;
  workload.port_table = {{443, 40}, {80, 30}, {22, 20}, {3389, 10}};
  workload.noise_sources = 50;

  simgen::GroupSpec scanners;
  scanners.name = "quickstart-masscan";
  scanners.tool = simgen::WireTool::kMasscan;
  scanners.pool = enrich::ScannerType::kHosting;
  scanners.sources = 5;
  scanners.campaigns = 8;
  scanners.hits_median = 400;
  scanners.pps_median = 2e6;  // small telescope: keep the scan short
  scanners.pps_sigma = 1.3;
  workload.groups.push_back(scanners);

  simgen::GroupSpec bots = scanners;
  bots.name = "quickstart-mirai";
  bots.tool = simgen::WireTool::kMirai;
  bots.pool = enrich::ScannerType::kResidential;
  bots.sources = 12;
  bots.campaigns = 12;
  bots.hits_median = 200;
  bots.port_table_override = {{2323, 70}, {80, 30}};
  workload.groups.push_back(bots);

  // --- 2. Generate and record ------------------------------------------
  {
    auto writer = pcap::Writer::create(capture_path);
    simgen::TrafficGenerator generator(workload, telescope,
                                       enrich::InternetRegistry::synthetic_default());
    const auto stats = generator.run([&](const net::RawFrame& f) { writer.write(f); });
    writer.flush();
    std::cout << "wrote " << stats.total_frames << " frames ("
              << stats.backscatter_frames << " backscatter) to " << capture_path
              << "\n";
  }

  // --- 3 + 4. Replay the capture through the pipeline -------------------
  core::Pipeline pipeline(telescope);
  core::PortTally tally;
  pipeline.add_observer(tally);

  auto reader = pcap::Reader::open(capture_path);
  net::RawFrame frame;
  while (reader.next(frame) == pcap::ReadStatus::kOk) {
    pipeline.feed_frame(frame);
  }
  const auto result = pipeline.finish();

  std::cout << "\nsensor: " << result.sensor.scan_probes << " SYN probes, "
            << result.sensor.backscatter << " backscatter, "
            << result.sensor.ingress_blocked << " dropped at ingress (23/tcp)\n";
  std::cout << "campaigns detected: " << result.campaigns.size() << " ("
            << result.tracker.subthreshold_flows << " sub-threshold sources)\n\n";

  report::Table table({"source", "tool", "packets", "ports", "pps (inferred)",
                       "IPv4 coverage"});
  for (const auto& campaign : result.campaigns) {
    table.add_row({campaign.source.to_string(),
                   std::string(fingerprint::to_string(campaign.tool)),
                   std::to_string(campaign.packets),
                   std::to_string(campaign.distinct_ports()),
                   report::fixed(campaign.extrapolated_pps, 0),
                   report::percent(campaign.coverage_fraction, 3)});
  }
  std::cout << table;

  const auto summary =
      core::yearly_summary(workload.year, workload.window_days, tally, result.campaigns);
  std::cout << "\ntool shares by scans: masscan "
            << report::percent(summary.tools.by_scans.share(fingerprint::Tool::kMasscan))
            << ", mirai "
            << report::percent(summary.tools.by_scans.share(fingerprint::Tool::kMirai))
            << ", unknown "
            << report::percent(summary.tools.by_scans.share(fingerprint::Tool::kUnknown))
            << "\n";
  return 0;
}
