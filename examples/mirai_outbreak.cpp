// Forensics of the Mirai era (2017): how an IoT botnet looks from a
// network telescope.
//
// Replays the 2017 window and isolates the Mirai-fingerprinted activity:
// the sequence-number-equals-destination signature, the bot population
// and its churn, the ports the variants spread to, and what the ingress
// block on 23/tcp hides (the 2323 alias keeps the botnet visible, §3.2).
//
// Run:  ./mirai_outbreak [--scale=8]
#include <iostream>
#include <string_view>

#include "core/analysis_campaigns.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"

using namespace synscan;

int main(int argc, char** argv) {
  double scale = 8.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(std::string(arg.substr(8)));
  }

  const auto& telescope = telescope::Telescope::paper_default();
  core::Pipeline pipeline(telescope);
  core::PortTally tally;
  pipeline.add_observer(tally);

  simgen::TrafficGenerator generator(simgen::year_config(2017, scale), telescope,
                                     enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  const auto shares = core::tool_shares(result.campaigns);
  std::cout << "2017 window: " << result.campaigns.size() << " campaigns, "
            << tally.total_packets() << " probes\n\n";
  std::cout << "Mirai share of scans:   "
            << report::percent(shares.by_scans.share(fingerprint::Tool::kMirai))
            << "   (paper: 46.5%)\n";
  std::cout << "Mirai share of packets: "
            << report::percent(shares.by_packets.share(fingerprint::Tool::kMirai))
            << "\n";
  std::cout << "distinct Mirai bots:    "
            << core::distinct_sources(result.campaigns, fingerprint::Tool::kMirai)
            << " source IPs (DHCP churn inflates this count, §4.2)\n";
  std::cout << "telnet at the ingress:  " << result.sensor.ingress_blocked
            << " frames to 23/445 dropped; the 2323 alias stays measurable\n\n";

  // Where did the botnet spread?
  std::unordered_map<std::uint16_t, std::uint64_t> mirai_ports;
  double mirai_speed_sum = 0.0;
  std::uint64_t mirai_campaigns = 0;
  for (const auto& campaign : result.campaigns) {
    if (campaign.tool != fingerprint::Tool::kMirai) continue;
    ++mirai_campaigns;
    mirai_speed_sum += campaign.extrapolated_pps;
    for (const auto& [port, packets] : campaign.port_packets) {
      mirai_ports[port] += packets;
    }
  }

  std::vector<std::pair<std::uint16_t, std::uint64_t>> ranked(mirai_ports.begin(),
                                                              mirai_ports.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  report::Table table({"port", "mirai packets", "note"});
  std::size_t shown = 0;
  for (const auto& [port, packets] : ranked) {
    const char* note = port == 2323   ? "telnet alias (the self-propagation port)"
                       : port == 7547 ? "TR-064/TR-069 (router takeover wave)"
                       : port == 5358 ? "WSDAPI variant"
                       : port == 80   ? "HTTP-targeting variants"
                                      : "";
    table.add_row({std::to_string(port), std::to_string(packets), note});
    if (++shown == 8) break;
  }
  std::cout << table;

  if (mirai_campaigns > 0) {
    std::cout << "\nmean Mirai scan rate: "
              << report::fixed(mirai_speed_sum / static_cast<double>(mirai_campaigns), 0)
              << " pps — embedded devices are the slowest scanners (§6.3)\n";
  }
  std::cout << "\nEvery bot here carries the seq == dest-IP signature; the classifier\n"
               "needs no payload, just two header fields per packet (§3.3).\n";
  return 0;
}
