// Hunting vertical scans and the institutions behind them (2024).
//
// Finds the campaigns that sweep large parts of the port range, labels
// their sources with the known-scanner ETL, and separates research
// scanning from the rest — the §6.8 "looking into the mirror" filter
// every telescope study needs.
//
// Run:  ./vertical_hunter [--scale=4]
#include <iostream>
#include <string_view>

#include "core/analysis_campaigns.h"
#include "core/analysis_types.h"
#include "core/pipeline.h"
#include "enrich/etl.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"

using namespace synscan;

int main(int argc, char** argv) {
  double scale = 4.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(std::string(arg.substr(8)));
  }

  const auto& telescope = telescope::Telescope::paper_default();
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::Pipeline pipeline(telescope);
  simgen::TrafficGenerator generator(simgen::year_config(2024, scale), telescope,
                                     registry);
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  const auto census = core::vertical_scan_census(result.campaigns);
  std::cout << "2024 window: " << census.total_campaigns << " campaigns\n"
            << "  >10 ports: " << census.over_10_ports
            << "   >100: " << census.over_100_ports
            << "   >1000: " << census.over_1000_ports
            << "   >10000: " << census.over_10000_ports
            << "   widest: " << census.max_ports << " ports\n\n";

  // The widest scans, labeled through the ETL.
  auto campaigns = result.campaigns;
  std::sort(campaigns.begin(), campaigns.end(),
            [](const core::Campaign& a, const core::Campaign& b) {
              return a.distinct_ports() > b.distinct_ports();
            });

  const enrich::KnownScannerEtl etl;
  report::Table table({"source", "ports", "pps", "attribution", "via"});
  for (std::size_t i = 0; i < std::min<std::size_t>(12, campaigns.size()); ++i) {
    const auto& campaign = campaigns[i];
    enrich::SourceIntelRecord intel;
    intel.ip = campaign.source;
    const auto match = etl.match(intel);
    const auto* record = registry.lookup(campaign.source);
    std::string attribution{match.phase != enrich::EtlPhase::kUnmatched
                                ? std::string(match.organization)
                                : (record ? record->organization : "unattributed")};
    table.add_row({campaign.source.to_string(),
                   std::to_string(campaign.distinct_ports()),
                   report::fixed(campaign.extrapolated_pps, 0), attribution,
                   match.phase == enrich::EtlPhase::kIpMatch       ? "IP match"
                   : match.phase == enrich::EtlPhase::kKeywordMatch ? "keyword"
                                                                    : "-"});
  }
  std::cout << "-- widest vertical scans --\n" << table;

  // How much of the telescope's view is researchers looking at researchers?
  std::uint64_t institutional_packets = 0;
  std::uint64_t total_packets = 0;
  for (const auto& campaign : result.campaigns) {
    total_packets += campaign.packets;
    if (registry.type_of(campaign.source) == enrich::ScannerType::kInstitutional) {
      institutional_packets += campaign.packets;
    }
  }
  std::cout << "\ninstitutional share of campaign traffic: "
            << report::percent(total_packets
                                   ? static_cast<double>(institutional_packets) /
                                         static_cast<double>(total_packets)
                                   : 0.0)
            << "\nFilter these out before quantifying 'malicious' scanning, or the\n"
               "study describes Censys, not criminals (§6.8).\n";
  return 0;
}
