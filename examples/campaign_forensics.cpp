// Deep dive into a single campaign: timeline, rate, coverage
// extrapolation and sharding detection.
//
// Picks the largest campaign of a simulated window and reconstructs what
// an analyst would: when it ran, how fast it really was Internet-wide,
// how much of IPv4 it covered — and whether other sources in the same
// /24 started an identical scan at the same time (ZMap sharding, §6.4).
//
// Run:  ./campaign_forensics [--scale=8]
#include <iostream>
#include <string_view>

#include "core/pipeline.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"
#include "stats/timeseries.h"

using namespace synscan;

int main(int argc, char** argv) {
  double scale = 8.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(std::string(arg.substr(8)));
  }

  const auto& telescope = telescope::Telescope::paper_default();
  const auto config = simgen::year_config(2024, scale);
  core::Pipeline pipeline(telescope);

  // Keep a per-source activity series for the timeline reconstruction.
  struct Timeline final : core::ProbeObserver {
    explicit Timeline(net::TimeUs origin)
        : series(origin, net::kMicrosPerHour) {}
    void on_probe(const telescope::ScanProbe& probe) override {
      series.add(probe.timestamp_us);
    }
    stats::BucketedSeries series;
  } timeline(config.start_time);
  pipeline.add_observer(timeline);

  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();
  if (result.campaigns.empty()) {
    std::cout << "no campaigns detected\n";
    return 1;
  }

  const auto* subject = &result.campaigns.front();
  for (const auto& campaign : result.campaigns) {
    if (campaign.packets > subject->packets) subject = &campaign;
  }

  const auto model = telescope.model();
  std::cout << "=== campaign #" << subject->id << " ===\n"
            << "source:            " << subject->source.to_string() << "\n"
            << "tool fingerprint:  " << fingerprint::to_string(subject->tool) << "\n"
            << "telescope hits:    " << subject->packets << " packets, "
            << subject->distinct_destinations << " distinct dark addresses\n"
            << "ports targeted:    " << subject->distinct_ports() << "\n"
            << "duration:          "
            << report::fixed(subject->duration_seconds() / 3600.0, 2) << " h\n"
            << "inferred rate:     " << report::fixed(subject->extrapolated_pps, 0)
            << " pps Internet-wide (" << report::fixed(subject->speed_mbps(), 1)
            << " Mbps)\n"
            << "inferred volume:   "
            << report::human_count(subject->extrapolated_packets)
            << " probes across IPv4\n"
            << "IPv4 coverage:     " << report::percent(subject->coverage_fraction, 2)
            << "\n"
            << "detection check:   a scan this fast is seen by the telescope within "
            << report::fixed(model.seconds_to_detect(subject->extrapolated_pps, 0.999),
                             1)
            << " s with 99.9% probability\n";

  // Sharding detection: same /24, overlapping start, same port set.
  std::vector<const core::Campaign*> peers;
  for (const auto& campaign : result.campaigns) {
    if (campaign.id == subject->id) continue;
    if (campaign.source.slash24() != subject->source.slash24()) continue;
    const auto dt = campaign.first_seen_us - subject->first_seen_us;
    if (dt > -net::kMicrosPerHour && dt < net::kMicrosPerHour) peers.push_back(&campaign);
  }
  if (!peers.empty()) {
    std::cout << "\nsharding: " << peers.size()
              << " peer campaigns from the same /24 started within an hour —\n"
              << "their joint coverage is "
              << report::percent(
                     std::min(1.0, subject->coverage_fraction *
                                       static_cast<double>(peers.size() + 1)),
                     1)
              << " of IPv4 (one logical scan split over many hands, §4.1/§6.4)\n";
  } else {
    std::cout << "\nsharding: no co-started peers in " << subject->source.to_string()
              << "'s /24 — a single-source scan\n";
  }

  // Hourly activity of the whole telescope around the campaign.
  std::cout << "\ntelescope-wide hourly probe counts (first 24 h of the window):\n";
  const auto dense = timeline.series.dense();
  for (std::size_t hour = 0; hour < std::min<std::size_t>(24, dense.size()); ++hour) {
    std::cout << "  h" << hour << ": " << dense[hour] << "\n";
  }
  return 0;
}
