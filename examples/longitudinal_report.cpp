// The paper's core argument, as a program: the scanning ecosystem is so
// volatile that only longitudinal measurement gets it right.
//
// Replays three eras (2015, 2020, 2024) through the identical pipeline
// and prints what a study anchored in each single year would have
// concluded — then the longitudinal view across all three.
//
// Run:  ./longitudinal_report [--scale=16]
#include <iostream>
#include <string_view>

#include "core/analysis_campaigns.h"
#include "core/analysis_summary.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"
#include "stats/regression.h"

using namespace synscan;

namespace {

struct EraView {
  int year;
  core::YearlySummary summary;
  std::string dominant_tool;
  std::string top_port;
};

EraView study_of(int year, double scale) {
  const auto& telescope = telescope::Telescope::paper_default();
  core::Pipeline pipeline(telescope);
  core::PortTally tally;
  pipeline.add_observer(tally);
  simgen::TrafficGenerator generator(simgen::year_config(year, scale), telescope,
                                     enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  EraView view;
  view.year = year;
  view.summary = core::yearly_summary(year, simgen::year_config(year, scale).window_days,
                                      tally, result.campaigns);
  fingerprint::Tool best = fingerprint::Tool::kUnknown;
  double best_share = 0.0;
  for (const auto tool : fingerprint::kAllTools) {
    if (tool == fingerprint::Tool::kUnknown) continue;
    const auto share = view.summary.tools.by_scans.share(tool);
    if (share > best_share) {
      best_share = share;
      best = tool;
    }
  }
  view.dominant_tool = std::string(fingerprint::to_string(best)) + " (" +
                       report::percent(best_share) + ")";
  if (!view.summary.top_ports_by_packets.empty()) {
    view.top_port = std::to_string(view.summary.top_ports_by_packets[0].port) + " (" +
                    report::percent(view.summary.top_ports_by_packets[0].share) + ")";
  }
  return view;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 16.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(std::string(arg.substr(8)));
  }

  std::vector<EraView> eras;
  for (const int year : {2015, 2020, 2024}) {
    std::cout << "replaying " << year << "...\n";
    eras.push_back(study_of(year, scale));
  }

  std::cout << "\nWhat a single-snapshot study would conclude:\n\n";
  report::Table table({"anchored in", "pkts/day (scaled)", "scans/mo (scaled)",
                       "dominant known tool", "hottest port", "pkts/scan"});
  for (const auto& era : eras) {
    table.add_row({std::to_string(era.year),
                   report::human_count(era.summary.packets_per_day),
                   report::human_count(era.summary.scans_per_month), era.dominant_tool,
                   era.top_port, report::fixed(era.summary.mean_packets_per_scan, 0)});
  }
  std::cout << table;

  std::vector<double> years;
  std::vector<double> volumes;
  for (const auto& era : eras) {
    years.push_back(era.year);
    volumes.push_back(era.summary.packets_per_day);
  }
  const auto growth = stats::annual_growth_rate(volumes);
  std::cout << "\nLongitudinal view: traffic grows "
            << report::percent(growth)
            << "/era-step while the dominant tool changes every era\n"
            << "(nmap -> masscan/mirai -> zmap) and the hottest port migrates.\n"
            << "Any one snapshot \"largely over- or underestimates\" the others'\n"
            << "ecosystems — the paper's case for long-term measurement (§4.4, §7).\n";
  return 0;
}
