// A day in the life of a darknet monitor: streaming campaign detection
// with a real-time "blocklist feed".
//
// The paper's §4.4 conclusion is that blocklists of scanner IPs age out
// within days and are only useful as a real-time feed. This example
// shows what that feed looks like: campaigns are announced the moment
// the tracker closes them, annotated with tool, origin type and speed.
//
// Run:  ./darknet_monitor [--year=2022] [--scale=8]
#include <iostream>
#include <string_view>

#include "core/tracker.h"
#include "enrich/registry.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"
#include "telescope/sensor.h"

using namespace synscan;

int main(int argc, char** argv) {
  int year = 2022;
  double scale = 16.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--year=", 0) == 0) year = std::stoi(std::string(arg.substr(7)));
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(std::string(arg.substr(8)));
  }

  const auto& telescope = telescope::Telescope::paper_default();
  const auto& registry = enrich::InternetRegistry::synthetic_default();

  auto config = simgen::year_config(year, scale);
  config.window_days = std::min(config.window_days, 3.0);  // a short shift

  telescope::Sensor sensor(telescope);
  std::uint64_t feed_entries = 0;

  core::CampaignTracker tracker(
      {}, telescope.monitored_count(), [&](core::Campaign&& campaign) {
        ++feed_entries;
        if (feed_entries > 40 && feed_entries % 50 != 0) return;  // keep output sane
        const auto* record = registry.lookup(campaign.source);
        std::cout << "[feed] " << campaign.source.to_string() << "  tool="
                  << fingerprint::to_string(campaign.tool) << "  type="
                  << enrich::to_string(record ? record->type
                                              : enrich::ScannerType::kUnknown)
                  << "  country="
                  << (record ? record->country.to_string() : std::string("??"))
                  << "  ports=" << campaign.distinct_ports()
                  << "  pps=" << report::fixed(campaign.extrapolated_pps, 0)
                  << "  coverage=" << report::percent(campaign.coverage_fraction, 2)
                  << "\n";
      });

  simgen::TrafficGenerator generator(config, telescope, registry);
  telescope::ScanProbe probe;
  (void)generator.run([&](const net::RawFrame& frame) {
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      tracker.feed(probe);
    }
  });
  tracker.finish();

  const auto& counters = sensor.counters();
  std::cout << "\n--- shift report (" << year << ", " << config.window_days
            << " days at 1/" << simgen::kPacketScale * scale << " volume) ---\n"
            << "frames seen:        " << counters.total() << "\n"
            << "SYN scan probes:    " << counters.scan_probes << "\n"
            << "backscatter:        " << counters.backscatter << "\n"
            << "ingress-blocked:    " << counters.ingress_blocked << " (23/445)\n"
            << "campaigns -> feed:  " << feed_entries << "\n"
            << "sub-threshold:      " << tracker.counters().subthreshold_flows
            << " sources (never qualified as Internet-wide scans)\n";
  std::cout << "\nBy the time a daily blocklist ships, most of these sources are\n"
               "gone (§6.6): treat the feed as real-time or not at all.\n";
  return 0;
}
