file(REMOVE_RECURSE
  "CMakeFiles/darknet_monitor.dir/darknet_monitor.cpp.o"
  "CMakeFiles/darknet_monitor.dir/darknet_monitor.cpp.o.d"
  "darknet_monitor"
  "darknet_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darknet_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
