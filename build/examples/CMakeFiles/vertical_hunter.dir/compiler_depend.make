# Empty compiler generated dependencies file for vertical_hunter.
# This may be replaced when dependencies are built.
