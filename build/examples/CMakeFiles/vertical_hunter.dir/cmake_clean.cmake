file(REMOVE_RECURSE
  "CMakeFiles/vertical_hunter.dir/vertical_hunter.cpp.o"
  "CMakeFiles/vertical_hunter.dir/vertical_hunter.cpp.o.d"
  "vertical_hunter"
  "vertical_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertical_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
