# Empty dependencies file for mirai_outbreak.
# This may be replaced when dependencies are built.
