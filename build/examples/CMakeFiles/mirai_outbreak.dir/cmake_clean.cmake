file(REMOVE_RECURSE
  "CMakeFiles/mirai_outbreak.dir/mirai_outbreak.cpp.o"
  "CMakeFiles/mirai_outbreak.dir/mirai_outbreak.cpp.o.d"
  "mirai_outbreak"
  "mirai_outbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirai_outbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
