file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_report.dir/longitudinal_report.cpp.o"
  "CMakeFiles/longitudinal_report.dir/longitudinal_report.cpp.o.d"
  "longitudinal_report"
  "longitudinal_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
