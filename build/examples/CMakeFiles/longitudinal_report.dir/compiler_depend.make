# Empty compiler generated dependencies file for longitudinal_report.
# This may be replaced when dependencies are built.
