# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/synscan_net_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_telescope_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_fingerprint_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_enrich_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_core_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_simgen_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_report_tests[1]_include.cmake")
include("/root/repo/build/tests/synscan_integration_tests[1]_include.cmake")
add_test([=[cli_help]=] "/root/repo/build/src/cli/synscan" "help")
set_tests_properties([=[cli_help]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;83;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_simulate_analyze]=] "/usr/bin/cmake" "-DSYNSCAN=/root/repo/build/src/cli/synscan" "-DWORKDIR=/root/repo/build/cli_test" "-P" "/root/repo/tests/cli/smoke.cmake")
set_tests_properties([=[cli_simulate_analyze]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_unknown_command]=] "/root/repo/build/src/cli/synscan" "frobnicate")
set_tests_properties([=[cli_unknown_command]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_missing_file]=] "/root/repo/build/src/cli/synscan" "analyze" "/nonexistent.pcap")
set_tests_properties([=[cli_missing_file]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
