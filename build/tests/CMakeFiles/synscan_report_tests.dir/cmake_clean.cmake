file(REMOVE_RECURSE
  "CMakeFiles/synscan_report_tests.dir/report/json_test.cpp.o"
  "CMakeFiles/synscan_report_tests.dir/report/json_test.cpp.o.d"
  "CMakeFiles/synscan_report_tests.dir/report/report_test.cpp.o"
  "CMakeFiles/synscan_report_tests.dir/report/report_test.cpp.o.d"
  "synscan_report_tests"
  "synscan_report_tests.pdb"
  "synscan_report_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_report_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
