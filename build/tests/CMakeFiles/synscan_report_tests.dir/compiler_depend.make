# Empty compiler generated dependencies file for synscan_report_tests.
# This may be replaced when dependencies are built.
