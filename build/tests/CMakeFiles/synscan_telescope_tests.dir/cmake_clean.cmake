file(REMOVE_RECURSE
  "CMakeFiles/synscan_telescope_tests.dir/telescope/sensor_test.cpp.o"
  "CMakeFiles/synscan_telescope_tests.dir/telescope/sensor_test.cpp.o.d"
  "CMakeFiles/synscan_telescope_tests.dir/telescope/telescope_test.cpp.o"
  "CMakeFiles/synscan_telescope_tests.dir/telescope/telescope_test.cpp.o.d"
  "synscan_telescope_tests"
  "synscan_telescope_tests.pdb"
  "synscan_telescope_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_telescope_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
