# Empty compiler generated dependencies file for synscan_telescope_tests.
# This may be replaced when dependencies are built.
