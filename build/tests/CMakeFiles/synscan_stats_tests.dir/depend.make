# Empty dependencies file for synscan_stats_tests.
# This may be replaced when dependencies are built.
