file(REMOVE_RECURSE
  "CMakeFiles/synscan_stats_tests.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/ecdf_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/ecdf_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/hyperloglog_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/hyperloglog_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/hypothesis_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/hypothesis_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/regression_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/regression_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/telescope_model_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/telescope_model_test.cpp.o.d"
  "CMakeFiles/synscan_stats_tests.dir/stats/timeseries_test.cpp.o"
  "CMakeFiles/synscan_stats_tests.dir/stats/timeseries_test.cpp.o.d"
  "synscan_stats_tests"
  "synscan_stats_tests.pdb"
  "synscan_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
