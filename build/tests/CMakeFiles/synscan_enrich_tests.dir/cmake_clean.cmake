file(REMOVE_RECURSE
  "CMakeFiles/synscan_enrich_tests.dir/enrich/etl_test.cpp.o"
  "CMakeFiles/synscan_enrich_tests.dir/enrich/etl_test.cpp.o.d"
  "CMakeFiles/synscan_enrich_tests.dir/enrich/known_scanners_test.cpp.o"
  "CMakeFiles/synscan_enrich_tests.dir/enrich/known_scanners_test.cpp.o.d"
  "CMakeFiles/synscan_enrich_tests.dir/enrich/registry_test.cpp.o"
  "CMakeFiles/synscan_enrich_tests.dir/enrich/registry_test.cpp.o.d"
  "synscan_enrich_tests"
  "synscan_enrich_tests.pdb"
  "synscan_enrich_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_enrich_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
