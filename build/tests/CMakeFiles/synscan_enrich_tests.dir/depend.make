# Empty dependencies file for synscan_enrich_tests.
# This may be replaced when dependencies are built.
