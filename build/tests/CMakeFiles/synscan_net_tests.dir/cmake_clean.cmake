file(REMOVE_RECURSE
  "CMakeFiles/synscan_net_tests.dir/net/checksum_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/checksum_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/decode_fuzz_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/decode_fuzz_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/headers_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/headers_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/mac_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/mac_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/packet_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/packet_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/pcap_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/pcap_test.cpp.o.d"
  "CMakeFiles/synscan_net_tests.dir/net/pcapng_test.cpp.o"
  "CMakeFiles/synscan_net_tests.dir/net/pcapng_test.cpp.o.d"
  "synscan_net_tests"
  "synscan_net_tests.pdb"
  "synscan_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
