# Empty dependencies file for synscan_net_tests.
# This may be replaced when dependencies are built.
