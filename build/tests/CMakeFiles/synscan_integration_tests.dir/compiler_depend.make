# Empty compiler generated dependencies file for synscan_integration_tests.
# This may be replaced when dependencies are built.
