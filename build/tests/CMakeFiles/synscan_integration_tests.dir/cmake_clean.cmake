file(REMOVE_RECURSE
  "CMakeFiles/synscan_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/synscan_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/synscan_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/synscan_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/synscan_integration_tests.dir/integration/property_test.cpp.o"
  "CMakeFiles/synscan_integration_tests.dir/integration/property_test.cpp.o.d"
  "synscan_integration_tests"
  "synscan_integration_tests.pdb"
  "synscan_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
