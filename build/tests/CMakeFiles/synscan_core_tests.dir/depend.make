# Empty dependencies file for synscan_core_tests.
# This may be replaced when dependencies are built.
