file(REMOVE_RECURSE
  "CMakeFiles/synscan_core_tests.dir/core/analysis_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/analysis_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/blocklist_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/blocklist_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/collaboration_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/collaboration_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/daily_series_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/daily_series_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/parallel_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/parallel_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/pipeline_unit_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/pipeline_unit_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/port_tally_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/port_tally_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/recurrence_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/recurrence_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/tracker_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/tracker_test.cpp.o.d"
  "CMakeFiles/synscan_core_tests.dir/core/volatility_test.cpp.o"
  "CMakeFiles/synscan_core_tests.dir/core/volatility_test.cpp.o.d"
  "synscan_core_tests"
  "synscan_core_tests.pdb"
  "synscan_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
