# Empty dependencies file for synscan_fingerprint_tests.
# This may be replaced when dependencies are built.
