file(REMOVE_RECURSE
  "CMakeFiles/synscan_fingerprint_tests.dir/fingerprint/classifier_test.cpp.o"
  "CMakeFiles/synscan_fingerprint_tests.dir/fingerprint/classifier_test.cpp.o.d"
  "CMakeFiles/synscan_fingerprint_tests.dir/fingerprint/matchers_test.cpp.o"
  "CMakeFiles/synscan_fingerprint_tests.dir/fingerprint/matchers_test.cpp.o.d"
  "synscan_fingerprint_tests"
  "synscan_fingerprint_tests.pdb"
  "synscan_fingerprint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_fingerprint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
