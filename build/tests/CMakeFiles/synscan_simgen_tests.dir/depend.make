# Empty dependencies file for synscan_simgen_tests.
# This may be replaced when dependencies are built.
