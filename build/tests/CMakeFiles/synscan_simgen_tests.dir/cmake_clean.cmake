file(REMOVE_RECURSE
  "CMakeFiles/synscan_simgen_tests.dir/simgen/ecosystem_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/ecosystem_test.cpp.o.d"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/generator_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/generator_test.cpp.o.d"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/permute_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/permute_test.cpp.o.d"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/rng_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/rng_test.cpp.o.d"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/services_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/services_test.cpp.o.d"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/wire_test.cpp.o"
  "CMakeFiles/synscan_simgen_tests.dir/simgen/wire_test.cpp.o.d"
  "synscan_simgen_tests"
  "synscan_simgen_tests.pdb"
  "synscan_simgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_simgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
