
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cpp" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcap/CMakeFiles/synscan_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/synscan_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/synscan_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/synscan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/synscan_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/synscan_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/synscan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/enrich/CMakeFiles/synscan_enrich.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
