# Empty compiler generated dependencies file for bench_portspace.
# This may be replaced when dependencies are built.
