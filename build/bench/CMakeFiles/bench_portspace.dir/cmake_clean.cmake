file(REMOVE_RECURSE
  "CMakeFiles/bench_portspace.dir/bench_portspace.cpp.o"
  "CMakeFiles/bench_portspace.dir/bench_portspace.cpp.o.d"
  "bench_portspace"
  "bench_portspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
