# Empty dependencies file for bench_geo.
# This may be replaced when dependencies are built.
