file(REMOVE_RECURSE
  "CMakeFiles/bench_geo.dir/bench_geo.cpp.o"
  "CMakeFiles/bench_geo.dir/bench_geo.cpp.o.d"
  "bench_geo"
  "bench_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
