# Empty dependencies file for bench_zmap_daily.
# This may be replaced when dependencies are built.
