file(REMOVE_RECURSE
  "CMakeFiles/bench_zmap_daily.dir/bench_zmap_daily.cpp.o"
  "CMakeFiles/bench_zmap_daily.dir/bench_zmap_daily.cpp.o.d"
  "bench_zmap_daily"
  "bench_zmap_daily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zmap_daily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
