# Empty dependencies file for bench_vertical.
# This may be replaced when dependencies are built.
