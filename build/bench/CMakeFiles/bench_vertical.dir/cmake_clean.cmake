file(REMOVE_RECURSE
  "CMakeFiles/bench_vertical.dir/bench_vertical.cpp.o"
  "CMakeFiles/bench_vertical.dir/bench_vertical.cpp.o.d"
  "bench_vertical"
  "bench_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
