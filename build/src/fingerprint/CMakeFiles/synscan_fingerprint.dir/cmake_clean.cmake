file(REMOVE_RECURSE
  "CMakeFiles/synscan_fingerprint.dir/classifier.cpp.o"
  "CMakeFiles/synscan_fingerprint.dir/classifier.cpp.o.d"
  "CMakeFiles/synscan_fingerprint.dir/matchers.cpp.o"
  "CMakeFiles/synscan_fingerprint.dir/matchers.cpp.o.d"
  "CMakeFiles/synscan_fingerprint.dir/tool.cpp.o"
  "CMakeFiles/synscan_fingerprint.dir/tool.cpp.o.d"
  "libsynscan_fingerprint.a"
  "libsynscan_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
