# Empty dependencies file for synscan_fingerprint.
# This may be replaced when dependencies are built.
