
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/classifier.cpp" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/classifier.cpp.o" "gcc" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/classifier.cpp.o.d"
  "/root/repo/src/fingerprint/matchers.cpp" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/matchers.cpp.o" "gcc" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/matchers.cpp.o.d"
  "/root/repo/src/fingerprint/tool.cpp" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/tool.cpp.o" "gcc" "src/fingerprint/CMakeFiles/synscan_fingerprint.dir/tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/synscan_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/synscan_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
