file(REMOVE_RECURSE
  "libsynscan_fingerprint.a"
)
