# Empty dependencies file for synscan_stats.
# This may be replaced when dependencies are built.
