# Empty compiler generated dependencies file for synscan_stats.
# This may be replaced when dependencies are built.
