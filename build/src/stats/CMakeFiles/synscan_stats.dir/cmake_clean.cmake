file(REMOVE_RECURSE
  "CMakeFiles/synscan_stats.dir/descriptive.cpp.o"
  "CMakeFiles/synscan_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/ecdf.cpp.o"
  "CMakeFiles/synscan_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/histogram.cpp.o"
  "CMakeFiles/synscan_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/hyperloglog.cpp.o"
  "CMakeFiles/synscan_stats.dir/hyperloglog.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/synscan_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/regression.cpp.o"
  "CMakeFiles/synscan_stats.dir/regression.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/telescope_model.cpp.o"
  "CMakeFiles/synscan_stats.dir/telescope_model.cpp.o.d"
  "CMakeFiles/synscan_stats.dir/timeseries.cpp.o"
  "CMakeFiles/synscan_stats.dir/timeseries.cpp.o.d"
  "libsynscan_stats.a"
  "libsynscan_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
