
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/synscan_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/synscan_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/synscan_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/hyperloglog.cpp" "src/stats/CMakeFiles/synscan_stats.dir/hyperloglog.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/hyperloglog.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/synscan_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/synscan_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/telescope_model.cpp" "src/stats/CMakeFiles/synscan_stats.dir/telescope_model.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/telescope_model.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/synscan_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/synscan_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
