file(REMOVE_RECURSE
  "libsynscan_stats.a"
)
