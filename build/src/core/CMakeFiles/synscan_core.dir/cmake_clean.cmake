file(REMOVE_RECURSE
  "CMakeFiles/synscan_core.dir/analysis_campaigns.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_campaigns.cpp.o.d"
  "CMakeFiles/synscan_core.dir/analysis_geo.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_geo.cpp.o.d"
  "CMakeFiles/synscan_core.dir/analysis_recurrence.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_recurrence.cpp.o.d"
  "CMakeFiles/synscan_core.dir/analysis_summary.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_summary.cpp.o.d"
  "CMakeFiles/synscan_core.dir/analysis_tools.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_tools.cpp.o.d"
  "CMakeFiles/synscan_core.dir/analysis_types.cpp.o"
  "CMakeFiles/synscan_core.dir/analysis_types.cpp.o.d"
  "CMakeFiles/synscan_core.dir/blocklist.cpp.o"
  "CMakeFiles/synscan_core.dir/blocklist.cpp.o.d"
  "CMakeFiles/synscan_core.dir/collaboration.cpp.o"
  "CMakeFiles/synscan_core.dir/collaboration.cpp.o.d"
  "CMakeFiles/synscan_core.dir/daily_series.cpp.o"
  "CMakeFiles/synscan_core.dir/daily_series.cpp.o.d"
  "CMakeFiles/synscan_core.dir/parallel.cpp.o"
  "CMakeFiles/synscan_core.dir/parallel.cpp.o.d"
  "CMakeFiles/synscan_core.dir/pipeline.cpp.o"
  "CMakeFiles/synscan_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/synscan_core.dir/port_tally.cpp.o"
  "CMakeFiles/synscan_core.dir/port_tally.cpp.o.d"
  "CMakeFiles/synscan_core.dir/tracker.cpp.o"
  "CMakeFiles/synscan_core.dir/tracker.cpp.o.d"
  "CMakeFiles/synscan_core.dir/volatility.cpp.o"
  "CMakeFiles/synscan_core.dir/volatility.cpp.o.d"
  "libsynscan_core.a"
  "libsynscan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
