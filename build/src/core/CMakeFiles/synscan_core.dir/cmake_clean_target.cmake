file(REMOVE_RECURSE
  "libsynscan_core.a"
)
