# Empty compiler generated dependencies file for synscan_core.
# This may be replaced when dependencies are built.
