
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis_campaigns.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_campaigns.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_campaigns.cpp.o.d"
  "/root/repo/src/core/analysis_geo.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_geo.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_geo.cpp.o.d"
  "/root/repo/src/core/analysis_recurrence.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_recurrence.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_recurrence.cpp.o.d"
  "/root/repo/src/core/analysis_summary.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_summary.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_summary.cpp.o.d"
  "/root/repo/src/core/analysis_tools.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_tools.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_tools.cpp.o.d"
  "/root/repo/src/core/analysis_types.cpp" "src/core/CMakeFiles/synscan_core.dir/analysis_types.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/analysis_types.cpp.o.d"
  "/root/repo/src/core/blocklist.cpp" "src/core/CMakeFiles/synscan_core.dir/blocklist.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/blocklist.cpp.o.d"
  "/root/repo/src/core/collaboration.cpp" "src/core/CMakeFiles/synscan_core.dir/collaboration.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/collaboration.cpp.o.d"
  "/root/repo/src/core/daily_series.cpp" "src/core/CMakeFiles/synscan_core.dir/daily_series.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/daily_series.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/core/CMakeFiles/synscan_core.dir/parallel.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/parallel.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/synscan_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/port_tally.cpp" "src/core/CMakeFiles/synscan_core.dir/port_tally.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/port_tally.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/synscan_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/tracker.cpp.o.d"
  "/root/repo/src/core/volatility.cpp" "src/core/CMakeFiles/synscan_core.dir/volatility.cpp.o" "gcc" "src/core/CMakeFiles/synscan_core.dir/volatility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/synscan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/synscan_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/synscan_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/enrich/CMakeFiles/synscan_enrich.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
