file(REMOVE_RECURSE
  "libsynscan_telescope.a"
)
