# Empty compiler generated dependencies file for synscan_telescope.
# This may be replaced when dependencies are built.
