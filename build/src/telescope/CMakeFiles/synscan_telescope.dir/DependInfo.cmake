
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telescope/sensor.cpp" "src/telescope/CMakeFiles/synscan_telescope.dir/sensor.cpp.o" "gcc" "src/telescope/CMakeFiles/synscan_telescope.dir/sensor.cpp.o.d"
  "/root/repo/src/telescope/telescope.cpp" "src/telescope/CMakeFiles/synscan_telescope.dir/telescope.cpp.o" "gcc" "src/telescope/CMakeFiles/synscan_telescope.dir/telescope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/synscan_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
