file(REMOVE_RECURSE
  "CMakeFiles/synscan_telescope.dir/sensor.cpp.o"
  "CMakeFiles/synscan_telescope.dir/sensor.cpp.o.d"
  "CMakeFiles/synscan_telescope.dir/telescope.cpp.o"
  "CMakeFiles/synscan_telescope.dir/telescope.cpp.o.d"
  "libsynscan_telescope.a"
  "libsynscan_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
