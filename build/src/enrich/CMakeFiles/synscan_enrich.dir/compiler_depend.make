# Empty compiler generated dependencies file for synscan_enrich.
# This may be replaced when dependencies are built.
