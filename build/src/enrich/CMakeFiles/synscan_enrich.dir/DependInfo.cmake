
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enrich/etl.cpp" "src/enrich/CMakeFiles/synscan_enrich.dir/etl.cpp.o" "gcc" "src/enrich/CMakeFiles/synscan_enrich.dir/etl.cpp.o.d"
  "/root/repo/src/enrich/known_scanners.cpp" "src/enrich/CMakeFiles/synscan_enrich.dir/known_scanners.cpp.o" "gcc" "src/enrich/CMakeFiles/synscan_enrich.dir/known_scanners.cpp.o.d"
  "/root/repo/src/enrich/registry.cpp" "src/enrich/CMakeFiles/synscan_enrich.dir/registry.cpp.o" "gcc" "src/enrich/CMakeFiles/synscan_enrich.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
