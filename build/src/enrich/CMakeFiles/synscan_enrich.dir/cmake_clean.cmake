file(REMOVE_RECURSE
  "CMakeFiles/synscan_enrich.dir/etl.cpp.o"
  "CMakeFiles/synscan_enrich.dir/etl.cpp.o.d"
  "CMakeFiles/synscan_enrich.dir/known_scanners.cpp.o"
  "CMakeFiles/synscan_enrich.dir/known_scanners.cpp.o.d"
  "CMakeFiles/synscan_enrich.dir/registry.cpp.o"
  "CMakeFiles/synscan_enrich.dir/registry.cpp.o.d"
  "libsynscan_enrich.a"
  "libsynscan_enrich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_enrich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
