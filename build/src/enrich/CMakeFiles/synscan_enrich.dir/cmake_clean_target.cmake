file(REMOVE_RECURSE
  "libsynscan_enrich.a"
)
