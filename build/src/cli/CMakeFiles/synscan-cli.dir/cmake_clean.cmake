file(REMOVE_RECURSE
  "CMakeFiles/synscan-cli.dir/main.cpp.o"
  "CMakeFiles/synscan-cli.dir/main.cpp.o.d"
  "synscan"
  "synscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
