# Empty compiler generated dependencies file for synscan-cli.
# This may be replaced when dependencies are built.
