# Empty compiler generated dependencies file for synscan_cli_lib.
# This may be replaced when dependencies are built.
