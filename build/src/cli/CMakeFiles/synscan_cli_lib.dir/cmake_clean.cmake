file(REMOVE_RECURSE
  "CMakeFiles/synscan_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/synscan_cli_lib.dir/commands.cpp.o.d"
  "libsynscan_cli_lib.a"
  "libsynscan_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
