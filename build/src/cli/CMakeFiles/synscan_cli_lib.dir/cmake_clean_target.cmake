file(REMOVE_RECURSE
  "libsynscan_cli_lib.a"
)
