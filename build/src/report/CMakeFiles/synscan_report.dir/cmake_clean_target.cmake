file(REMOVE_RECURSE
  "libsynscan_report.a"
)
