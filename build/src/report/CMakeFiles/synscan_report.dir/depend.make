# Empty dependencies file for synscan_report.
# This may be replaced when dependencies are built.
