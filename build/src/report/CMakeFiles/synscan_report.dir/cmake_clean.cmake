file(REMOVE_RECURSE
  "CMakeFiles/synscan_report.dir/json.cpp.o"
  "CMakeFiles/synscan_report.dir/json.cpp.o.d"
  "CMakeFiles/synscan_report.dir/series.cpp.o"
  "CMakeFiles/synscan_report.dir/series.cpp.o.d"
  "CMakeFiles/synscan_report.dir/table.cpp.o"
  "CMakeFiles/synscan_report.dir/table.cpp.o.d"
  "libsynscan_report.a"
  "libsynscan_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
