# Empty compiler generated dependencies file for synscan_simgen.
# This may be replaced when dependencies are built.
