file(REMOVE_RECURSE
  "CMakeFiles/synscan_simgen.dir/ecosystem.cpp.o"
  "CMakeFiles/synscan_simgen.dir/ecosystem.cpp.o.d"
  "CMakeFiles/synscan_simgen.dir/generator.cpp.o"
  "CMakeFiles/synscan_simgen.dir/generator.cpp.o.d"
  "CMakeFiles/synscan_simgen.dir/services.cpp.o"
  "CMakeFiles/synscan_simgen.dir/services.cpp.o.d"
  "CMakeFiles/synscan_simgen.dir/wire.cpp.o"
  "CMakeFiles/synscan_simgen.dir/wire.cpp.o.d"
  "libsynscan_simgen.a"
  "libsynscan_simgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_simgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
