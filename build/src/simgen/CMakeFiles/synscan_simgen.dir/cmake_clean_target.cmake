file(REMOVE_RECURSE
  "libsynscan_simgen.a"
)
