
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgen/ecosystem.cpp" "src/simgen/CMakeFiles/synscan_simgen.dir/ecosystem.cpp.o" "gcc" "src/simgen/CMakeFiles/synscan_simgen.dir/ecosystem.cpp.o.d"
  "/root/repo/src/simgen/generator.cpp" "src/simgen/CMakeFiles/synscan_simgen.dir/generator.cpp.o" "gcc" "src/simgen/CMakeFiles/synscan_simgen.dir/generator.cpp.o.d"
  "/root/repo/src/simgen/services.cpp" "src/simgen/CMakeFiles/synscan_simgen.dir/services.cpp.o" "gcc" "src/simgen/CMakeFiles/synscan_simgen.dir/services.cpp.o.d"
  "/root/repo/src/simgen/wire.cpp" "src/simgen/CMakeFiles/synscan_simgen.dir/wire.cpp.o" "gcc" "src/simgen/CMakeFiles/synscan_simgen.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/synscan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/synscan_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/enrich/CMakeFiles/synscan_enrich.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/synscan_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/synscan_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
