file(REMOVE_RECURSE
  "libsynscan_net.a"
)
