file(REMOVE_RECURSE
  "CMakeFiles/synscan_net.dir/checksum.cpp.o"
  "CMakeFiles/synscan_net.dir/checksum.cpp.o.d"
  "CMakeFiles/synscan_net.dir/headers.cpp.o"
  "CMakeFiles/synscan_net.dir/headers.cpp.o.d"
  "CMakeFiles/synscan_net.dir/ipv4.cpp.o"
  "CMakeFiles/synscan_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/synscan_net.dir/mac.cpp.o"
  "CMakeFiles/synscan_net.dir/mac.cpp.o.d"
  "CMakeFiles/synscan_net.dir/packet.cpp.o"
  "CMakeFiles/synscan_net.dir/packet.cpp.o.d"
  "libsynscan_net.a"
  "libsynscan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
