# Empty dependencies file for synscan_net.
# This may be replaced when dependencies are built.
