# Empty compiler generated dependencies file for synscan_pcap.
# This may be replaced when dependencies are built.
