file(REMOVE_RECURSE
  "libsynscan_pcap.a"
)
