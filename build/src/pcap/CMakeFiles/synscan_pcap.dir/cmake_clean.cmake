file(REMOVE_RECURSE
  "CMakeFiles/synscan_pcap.dir/pcap.cpp.o"
  "CMakeFiles/synscan_pcap.dir/pcap.cpp.o.d"
  "CMakeFiles/synscan_pcap.dir/pcapng.cpp.o"
  "CMakeFiles/synscan_pcap.dir/pcapng.cpp.o.d"
  "libsynscan_pcap.a"
  "libsynscan_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synscan_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
