#!/usr/bin/env bash
# Perf baselines: build Release, run the bench_micro tracker-feed
# microbenchmark plus the bench_tracker_replay mixed workload, and append
# one record to BENCH_tracker.json at the repo root; then run the
# bench_ingest capture-replay workload and append one record to
# BENCH_ingest.json; then run the bench_analyze warm-cache analytics
# workload and append one record to BENCH_analyze.json; then run the
# bench_synscand open-loop daemon load harness and append one record to
# BENCH_synscand.json; then run the bench_rollup sharded-analysis
# workload and append one record to BENCH_rollup.json. Run this before
# and after any change to the tracker, ingest, analyze, daemon or
# rollup hot paths so the perf trajectory stays auditable in-repo (see
# docs/PERFORMANCE.md, docs/SYNSCAND.md).
#
# Usage:
#   scripts/bench_baseline.sh [label]
# Environment:
#   BUILD_DIR       build directory (default: build-bench)
#   REPLAY_PROBES   workload size for bench_tracker_replay (default: 4000000)
#   INGEST_FRAMES   workload size for bench_ingest (default: 2000000)
#   INGEST_ITERS    measured iterations per ingest path (default: 5)
#   INGEST_CHECK_RATIO  minimum mmap_batch GB/s as a fraction of the
#                   measured memcpy baseline (default: 0.05 — a gross-
#                   regression floor; healthy builds run ~0.3-0.4)
#   ANALYZE_FRAMES  workload size for bench_analyze (default: 2000000)
#   SYNSCAND_RATE   offered load for bench_synscand (default: 4000 qps)
#   SYNSCAND_SECONDS  bench_synscand send window (default: 5)
#   ROLLUP_FRAMES   workload size for bench_rollup (default: 2000000)
#   ROLLUP_SHARDS   shard count for bench_rollup (default: 8)
#   ROLLUP_CHECK_RATIO  minimum cold/warm speedup for bench_rollup
#                   (default: 3 — a gross-regression floor; healthy
#                   builds run well above 10x)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-${repo}/build-bench}"
label="${1:-$(git -C "${repo}" rev-parse --abbrev-ref HEAD 2>/dev/null || echo unlabeled)}"
probes="${REPLAY_PROBES:-4000000}"
ingest_frames="${INGEST_FRAMES:-2000000}"
ingest_iters="${INGEST_ITERS:-5}"
ingest_check_ratio="${INGEST_CHECK_RATIO:-0.05}"
analyze_frames="${ANALYZE_FRAMES:-2000000}"
synscand_rate="${SYNSCAND_RATE:-4000}"
synscand_seconds="${SYNSCAND_SECONDS:-5}"
rollup_frames="${ROLLUP_FRAMES:-2000000}"
rollup_shards="${ROLLUP_SHARDS:-8}"
rollup_check_ratio="${ROLLUP_CHECK_RATIO:-3}"
out="${repo}/BENCH_tracker.json"
ingest_out="${repo}/BENCH_ingest.json"
analyze_out="${repo}/BENCH_analyze.json"
synscand_out="${repo}/BENCH_synscand.json"
rollup_out="${repo}/BENCH_rollup.json"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== build (${build}, Release)" >&2
cmake -B "${build}" -S "${repo}" -G Ninja \
  -DCMAKE_BUILD_TYPE=Release \
  -DSYNSCAN_BUILD_TESTS=OFF \
  -DSYNSCAN_BUILD_EXAMPLES=OFF >&2
cmake --build "${build}" -j "${jobs}" \
  --target bench_micro bench_tracker_replay bench_ingest bench_analyze \
           bench_synscand bench_rollup >&2

# Appends one record to a JSON-array trajectory file kept as one record
# per line, so appending is a three-line edit rather than a JSON-parser
# dependency.
append_record() {
  local file="$1" record="$2"
  if [ -s "${file}" ]; then
    tmp="$(mktemp)"
    sed '$ d' "${file}" > "${tmp}"           # drop closing "]"
    sed -i '$ s/$/,/' "${tmp}"               # comma after previous record
    printf '%s\n]\n' "${record}" >> "${tmp}"
    mv "${tmp}" "${file}"
    tmp=""
  else
    printf '[\n%s\n]\n' "${record}" > "${file}"
  fi
}

micro_json=""
tmp=""
cleanup() { rm -f "${micro_json}" "${tmp}"; }
trap cleanup EXIT

echo "== bench_micro (BM_TrackerFeed)" >&2
micro_json="$(mktemp)"
"${build}/bench/bench_micro" \
  --benchmark_filter='^BM_TrackerFeed$' \
  --benchmark_min_time=1.0 \
  --benchmark_format=json > "${micro_json}"
micro_items_per_sec="$(grep -o '"items_per_second": [0-9.e+-]*' "${micro_json}" \
  | head -n 1 | cut -d' ' -f2)"
if [ -z "${micro_items_per_sec}" ]; then
  echo "bench_baseline: failed to parse items_per_second from bench_micro" >&2
  exit 1
fi

echo "== bench_tracker_replay (${probes} probes)" >&2
replay_json="$("${build}/bench/bench_tracker_replay" --probes="${probes}" --label="${label}")"

git_rev="$(git -C "${repo}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
record="$(printf '{"label":"%s","git":"%s","date":"%s","micro_tracker_feed_items_per_sec":%s,"tracker_replay":%s}' \
  "${label}" "${git_rev}" "${date_utc}" "${micro_items_per_sec}" "${replay_json}")"

append_record "${out}" "${record}"
echo "== appended record to ${out}" >&2
echo "${record}"

echo "== bench_ingest (${ingest_frames} frames)" >&2
ingest_json="$("${build}/bench/bench_ingest" --frames="${ingest_frames}" \
  --iters="${ingest_iters}" --check-ratio="${ingest_check_ratio}" \
  --label="${label}")"
ingest_record="$(printf '{"label":"%s","git":"%s","date":"%s","ingest":%s}' \
  "${label}" "${git_rev}" "${date_utc}" "${ingest_json}")"
append_record "${ingest_out}" "${ingest_record}"
echo "== appended record to ${ingest_out}" >&2
echo "${ingest_record}"

echo "== bench_analyze (${analyze_frames} frames)" >&2
analyze_json="$("${build}/bench/bench_analyze" --frames="${analyze_frames}" \
  --label="${label}")"
analyze_record="$(printf '{"label":"%s","git":"%s","date":"%s","analyze":%s}' \
  "${label}" "${git_rev}" "${date_utc}" "${analyze_json}")"
append_record "${analyze_out}" "${analyze_record}"
echo "== appended record to ${analyze_out}" >&2
echo "${analyze_record}"

echo "== bench_synscand (${synscand_rate} qps for ${synscand_seconds}s)" >&2
synscand_json="$("${build}/bench/bench_synscand" --rate="${synscand_rate}" \
  --seconds="${synscand_seconds}" --label="${label}" --check-qps=1000)"
synscand_record="$(printf '{"label":"%s","git":"%s","date":"%s","synscand":%s}' \
  "${label}" "${git_rev}" "${date_utc}" "${synscand_json}")"
append_record "${synscand_out}" "${synscand_record}"
echo "== appended record to ${synscand_out}" >&2
echo "${synscand_record}"

echo "== bench_rollup (${rollup_frames} frames, ${rollup_shards} shards)" >&2
rollup_json="$("${build}/bench/bench_rollup" --frames="${rollup_frames}" \
  --shards="${rollup_shards}" --check-ratio="${rollup_check_ratio}" \
  --label="${label}")"
rollup_record="$(printf '{"label":"%s","git":"%s","date":"%s","rollup":%s}' \
  "${label}" "${git_rev}" "${date_utc}" "${rollup_json}")"
append_record "${rollup_out}" "${rollup_record}"
echo "== appended record to ${rollup_out}" >&2
echo "${rollup_record}"
