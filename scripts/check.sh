#!/usr/bin/env bash
# Full verification: configure, build, test, and smoke the observability
# surface — the same sequence CI runs. Usage:
#   scripts/check.sh [build-dir]
# Environment:
#   SYNSCAN_WERROR=ON|OFF   warnings-as-errors (default ON here, unlike
#                           the plain CMake default, so local runs match CI)
#   SANITIZER=thread|...    forward to -DSYNSCAN_SANITIZER
#   SYNSCAN_LINT=ON         also run scripts/lint.sh after the smoke test
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-${repo}/build-check}"
werror="${SYNSCAN_WERROR:-ON}"
sanitizer="${SANITIZER:-}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${build}, WERROR=${werror}${sanitizer:+, sanitizer=${sanitizer}})"
configure_args=(-DSYNSCAN_WERROR="${werror}")
if [ -n "${sanitizer}" ]; then
  configure_args+=(-DSYNSCAN_SANITIZER="${sanitizer}")
fi
cmake -B "${build}" -S "${repo}" "${configure_args[@]}"

echo "== build"
cmake --build "${build}" -j "${jobs}"

echo "== test"
ctest --test-dir "${build}" --output-on-failure -j "${jobs}"

echo "== metrics smoke"
workdir="${build}/check-smoke"
mkdir -p "${workdir}"
cli="${build}/src/cli/synscan"
"${cli}" simulate --year=2020 --scale=128 --days=1 --out="${workdir}/window.pcap"
"${cli}" analyze "${workdir}/window.pcap" --metrics="${workdir}/metrics.json"
for needle in '"schema":"synscan.run_report/1"' 'sensor.scan_probes' \
              'tracker.probes' 'parallel.items' '"timings"'; do
  grep -qF "${needle}" "${workdir}/metrics.json" || {
    echo "metrics smoke: missing ${needle} in metrics.json" >&2
    exit 1
  }
done

if [ "${SYNSCAN_LINT:-OFF}" = "ON" ]; then
  echo "== lint"
  "${repo}/scripts/lint.sh"
fi
echo "== OK"
