#!/usr/bin/env bash
# Full verification: configure, build, test, then smoke the
# observability surface and the synscand daemon (serve/query round trip
# pinned against offline analyze output) — the same sequence CI runs.
# Usage:
#   scripts/check.sh [build-dir]
# Environment:
#   SYNSCAN_WERROR=ON|OFF   warnings-as-errors (default ON here, unlike
#                           the plain CMake default, so local runs match CI)
#   SANITIZER=thread|...    forward to -DSYNSCAN_SANITIZER
#   SYNSCAN_LINT=ON         also run scripts/lint.sh after the smoke test
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-${repo}/build-check}"
werror="${SYNSCAN_WERROR:-ON}"
sanitizer="${SANITIZER:-}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${build}, WERROR=${werror}${sanitizer:+, sanitizer=${sanitizer}})"
configure_args=(-DSYNSCAN_WERROR="${werror}")
if [ -n "${sanitizer}" ]; then
  configure_args+=(-DSYNSCAN_SANITIZER="${sanitizer}")
fi
cmake -B "${build}" -S "${repo}" "${configure_args[@]}"

echo "== build"
cmake --build "${build}" -j "${jobs}"

echo "== test"
ctest --test-dir "${build}" --output-on-failure -j "${jobs}"

echo "== metrics smoke"
workdir="${build}/check-smoke"
mkdir -p "${workdir}"
cli="${build}/src/cli/synscan"
"${cli}" simulate --year=2020 --scale=128 --days=1 --out="${workdir}/window.pcap"
"${cli}" analyze "${workdir}/window.pcap" --metrics="${workdir}/metrics.json"
for needle in '"schema":"synscan.run_report/1"' 'sensor.scan_probes' \
              'tracker.probes' 'parallel.items' '"timings"'; do
  grep -qF "${needle}" "${workdir}/metrics.json" || {
    echo "metrics smoke: missing ${needle} in metrics.json" >&2
    exit 1
  }
done

echo "== synscand smoke"
# Daemon end to end: serve the capture analyzed above, drive the full
# command set through the query client, and check the daemon's QUERY
# output is byte-identical to the offline analyze --json export
# (docs/SYNSCAND.md). Worker counts must match for the comparison.
sock="${workdir}/synscand.sock"
"${cli}" analyze "${workdir}/window.pcap" --workers=2 \
  --json="${workdir}/offline.jsonl" > /dev/null
"${cli}" serve --socket="${sock}" --capture="${workdir}/window.pcap" \
  --workers=2 &
serve_pid=$!
trap '{ kill "${serve_pid}" 2>/dev/null || true; }' EXIT
for _ in $(seq 1 50); do
  [ -S "${sock}" ] && break
  sleep 0.1
done
"${cli}" query --socket="${sock}" PING
"${cli}" query --socket="${sock}" STATUS | grep -qF '"state":"ready"' || {
  echo "synscand smoke: STATUS did not report a resident capture" >&2
  exit 1
}
"${cli}" query --socket="${sock}" QUERY analyze > "${workdir}/daemon.jsonl"
cmp "${workdir}/offline.jsonl" "${workdir}/daemon.jsonl" || {
  echo "synscand smoke: daemon QUERY analyze diverged from offline --json" >&2
  exit 1
}
"${cli}" query --socket="${sock}" SHUTDOWN
wait "${serve_pid}"
trap - EXIT

if [ "${SYNSCAN_LINT:-OFF}" = "ON" ]; then
  echo "== lint"
  "${repo}/scripts/lint.sh"
fi
echo "== OK"
