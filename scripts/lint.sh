#!/usr/bin/env bash
# Project lint driver: clang-tidy over the exported compile database,
# the synscan-lint invariant checker, and shellcheck over the repo's
# shell scripts. See docs/STATIC_ANALYSIS.md.
#
# Usage:
#   scripts/lint.sh              # full tree
#   scripts/lint.sh --diff       # clang-tidy only on files changed vs origin/main
#   scripts/lint.sh --diff=REF   # ... changed vs REF
#
# Environment:
#   BUILD_DIR             compile-database build dir (default: build-lint)
#   SYNSCAN_LINT_REQUIRE  ON => missing clang-tidy/shellcheck is an error
#                         (CI sets this; locally absent tools are skipped)
#   CLANG_TIDY            clang-tidy binary (default: clang-tidy)
#   RUN_CLANG_TIDY        run-clang-tidy binary (default: run-clang-tidy)
#   SHELLCHECK            shellcheck binary (default: shellcheck)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-${repo}/build-lint}"
require="${SYNSCAN_LINT_REQUIRE:-OFF}"
clang_tidy="${CLANG_TIDY:-clang-tidy}"
run_clang_tidy="${RUN_CLANG_TIDY:-run-clang-tidy}"
shellcheck_bin="${SHELLCHECK:-shellcheck}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

diff_ref=""
diff_mode=0
for arg in "$@"; do
  case "${arg}" in
    --diff) diff_mode=1; diff_ref="origin/main" ;;
    --diff=*) diff_mode=1; diff_ref="${arg#--diff=}" ;;
    *) echo "lint.sh: unknown argument ${arg}" >&2; exit 2 ;;
  esac
done

status=0

missing_tool() {
  if [ "${require}" = "ON" ]; then
    echo "lint: $1 not found and SYNSCAN_LINT_REQUIRE=ON" >&2
    exit 1
  fi
  echo "lint: $1 not found — skipping (set SYNSCAN_LINT_REQUIRE=ON to fail)" >&2
}

echo "== synscan-lint (custom invariants)"
python3 "${repo}/tools/lint/synscan_lint.py" --repo "${repo}" --min-doc-names 20 \
  || status=1

echo "== shellcheck"
if command -v "${shellcheck_bin}" >/dev/null 2>&1; then
  "${shellcheck_bin}" "${repo}"/scripts/*.sh || status=1
else
  missing_tool shellcheck
fi

echo "== clang-tidy"
if command -v "${clang_tidy}" >/dev/null 2>&1; then
  if [ ! -f "${build}/compile_commands.json" ]; then
    echo "-- exporting compile database to ${build}"
    cmake -B "${build}" -S "${repo}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DSYNSCAN_BUILD_BENCH=OFF \
      -DSYNSCAN_BUILD_EXAMPLES=OFF >/dev/null
  fi

  # File list: the whole tree, or — in diff mode — only files touched
  # since the base ref (headers map onto their including .cpp via the
  # translation units that changed alongside them; a header-only change
  # still falls back to the full run).
  files=()
  if [ "${diff_mode}" = 1 ]; then
    while IFS= read -r changed; do
      case "${changed}" in
        src/*.cpp) files+=("${repo}/${changed}") ;;
      esac
    done < <(git -C "${repo}" diff --name-only --diff-filter=d "${diff_ref}" -- 'src')
    if [ "${#files[@]}" = 0 ]; then
      echo "-- no changed src/*.cpp vs ${diff_ref}; clang-tidy skipped"
    fi
  else
    while IFS= read -r source; do
      files+=("${source}")
    done < <(find "${repo}/src" -name '*.cpp' | sort)
  fi

  # Result cache: skip files whose content, the shared profile, and the
  # tidy binary are all unchanged since the last clean run. CI restores
  # ${build} so warm runs only re-lint what changed.
  cache="${build}/tidy-cache"
  mkdir -p "${cache}"
  stamp="$("${clang_tidy}" --version | cksum | cut -d' ' -f1)-$(cksum < "${repo}/.clang-tidy" | cut -d' ' -f1)"
  pending=()
  for source in ${files[@]+"${files[@]}"}; do
    key="$(printf '%s' "${source}" | cksum | cut -d' ' -f1)"
    sig="${stamp}-$(cksum < "${source}" | cut -d' ' -f1)"
    if [ "$(cat "${cache}/${key}" 2>/dev/null)" != "${sig}" ]; then
      pending+=("${source}")
    fi
  done

  if [ "${#pending[@]}" -gt 0 ]; then
    echo "-- ${#pending[@]} file(s) to lint (${#files[@]} candidates)"
    if command -v "${run_clang_tidy}" >/dev/null 2>&1; then
      "${run_clang_tidy}" -quiet -p "${build}" -j "${jobs}" \
        "${pending[@]}" || status=1
    else
      tidy_status=0
      for source in "${pending[@]}"; do
        "${clang_tidy}" -quiet -p "${build}" "${source}" || tidy_status=1
      done
      [ "${tidy_status}" = 0 ] || status=1
    fi
    if [ "${status}" = 0 ]; then
      for source in "${pending[@]}"; do
        key="$(printf '%s' "${source}" | cksum | cut -d' ' -f1)"
        printf '%s' "${stamp}-$(cksum < "${source}" | cut -d' ' -f1)" > "${cache}/${key}"
      done
    fi
  else
    echo "-- all ${#files[@]} candidate file(s) clean in cache"
  fi
else
  missing_tool clang-tidy
fi

if [ "${status}" = 0 ]; then
  echo "== lint OK"
else
  echo "== lint FAILED" >&2
fi
exit "${status}"
