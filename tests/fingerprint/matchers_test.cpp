#include "fingerprint/matchers.h"

#include <gtest/gtest.h>

#include "simgen/rng.h"
#include "simgen/wire.h"
#include "telescope/sensor.h"
#include "test_support.h"

namespace synscan::fingerprint {
namespace {

using synscan::testing::ProbeBuilder;

telescope::ScanProbe probe_from_wire(simgen::WireState& wire, net::Ipv4Address dst,
                                     std::uint16_t port) {
  net::TcpFrameSpec spec;
  wire.craft(spec, dst, port);
  telescope::ScanProbe probe;
  probe.source = spec.src_ip;
  probe.destination = dst;
  probe.source_port = spec.src_port;
  probe.destination_port = port;
  probe.sequence = spec.sequence;
  probe.ip_id = spec.ip_id;
  return probe;
}

TEST(ZmapMatcher, MatchesMarkedIpId) {
  EXPECT_TRUE(matches_zmap(ProbeBuilder().ipid(54321)));
  EXPECT_FALSE(matches_zmap(ProbeBuilder().ipid(54320)));
  EXPECT_FALSE(matches_zmap(ProbeBuilder().ipid(0)));
}

TEST(MasscanMatcher, PaperRelationHolds) {
  // IPid = destIP ^ destPort ^ SeqNum (folded to 16 bits).
  const auto dst = net::Ipv4Address::from_octets(198, 51, 9, 9);
  const std::uint32_t seq = 0x13572468;
  const std::uint16_t port = 443;
  const auto probe =
      ProbeBuilder().to(dst).port(port).seq(seq).ipid(masscan_ip_id(dst.value(), port, seq));
  EXPECT_TRUE(matches_masscan(probe));
}

TEST(MasscanMatcher, RejectsOffByOne) {
  const auto dst = net::Ipv4Address::from_octets(198, 51, 9, 9);
  const auto good = masscan_ip_id(dst.value(), 443, 0x1111);
  const auto probe = ProbeBuilder()
                         .to(dst)
                         .port(443)
                         .seq(0x1111)
                         .ipid(static_cast<std::uint16_t>(good ^ 1));
  EXPECT_FALSE(matches_masscan(probe));
}

TEST(MiraiMatcher, SequenceEqualsDestination) {
  const auto dst = net::Ipv4Address::from_octets(203, 0, 113, 5);
  EXPECT_TRUE(matches_mirai(ProbeBuilder().to(dst).seq(dst.value())));
  EXPECT_FALSE(matches_mirai(ProbeBuilder().to(dst).seq(dst.value() + 1)));
}

TEST(NmapMatcher, PairRelation) {
  // seq = (nfo||nfo) ^ secret: the XOR of any two has equal halves.
  const std::uint32_t secret = 0xcafebabe;
  const auto enc = [&](std::uint16_t nfo) {
    return ((static_cast<std::uint32_t>(nfo) << 16) | nfo) ^ secret;
  };
  EXPECT_TRUE(matches_nmap_pair(enc(0x1234), enc(0x5678)));
  EXPECT_TRUE(matches_nmap_pair(enc(0x0000), enc(0xffff)));
  EXPECT_FALSE(matches_nmap_pair(enc(0x1234), enc(0x5678) ^ 0x1));
}

TEST(NmapMatcher, IdenticalSequencesTriviallyMatch) {
  EXPECT_TRUE(matches_nmap_pair(0xabcdabcd, 0xabcdabcd));
}

TEST(NmapMatcher, RandomPairsRarelyMatch) {
  simgen::Rng rng(5);
  int matches = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (matches_nmap_pair(rng.next_u32(), rng.next_u32())) ++matches;
  }
  // Chance of a random match is 2^-16 ~ 1.5e-5; expect ~1.5 in 1e5.
  EXPECT_LT(matches, 12);
}

TEST(UnicornMatcher, PaperRelationHolds) {
  const std::uint32_t key = 0x5eed5eed;
  const auto make = [&](net::Ipv4Address dst, std::uint16_t sport, std::uint16_t dport) {
    return ProbeBuilder()
        .to(dst)
        .sport(sport)
        .port(dport)
        .seq(key ^ dst.value() ^ sport ^ (static_cast<std::uint32_t>(dport) << 16))
        .probe;
  };
  const auto a = make(net::Ipv4Address::from_octets(198, 51, 1, 1), 1111, 80);
  const auto b = make(net::Ipv4Address::from_octets(198, 51, 200, 9), 2222, 8080);
  EXPECT_TRUE(matches_unicorn_pair(a, b));

  auto c = b;
  c.sequence ^= 0x10;
  EXPECT_FALSE(matches_unicorn_pair(a, c));
}

// Property sweep: the wire synthesizer and the matchers must agree for
// every fingerprintable tool, at any destination/port.
struct WireCase {
  simgen::WireTool tool;
  bool zmap, masscan, mirai;
};

class WireMatcherTest : public ::testing::TestWithParam<WireCase> {};

TEST_P(WireMatcherTest, SinglePacketFingerprintsAgree) {
  simgen::Rng rng(77);
  simgen::WireState wire(GetParam().tool, rng.fork(1));
  for (int i = 0; i < 200; ++i) {
    const auto dst = net::Ipv4Address(0xcb007100u + rng.next_u32() % 65536);
    const auto port = static_cast<std::uint16_t>(1 + rng.uniform(65535));
    const auto probe = probe_from_wire(wire, dst, port);
    EXPECT_EQ(matches_zmap(probe), GetParam().zmap) << i;
    EXPECT_EQ(matches_masscan(probe), GetParam().masscan) << i;
    EXPECT_EQ(matches_mirai(probe), GetParam().mirai) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tools, WireMatcherTest,
    ::testing::Values(WireCase{simgen::WireTool::kZmap, true, false, false},
                      WireCase{simgen::WireTool::kMasscan, false, true, false},
                      WireCase{simgen::WireTool::kMirai, false, false, true}));

TEST(WireMatcher, NmapPairsAlwaysSatisfyRelation) {
  simgen::Rng rng(78);
  simgen::WireState wire(simgen::WireTool::kNmap, rng.fork(2));
  std::uint32_t previous = 0;
  bool have_previous = false;
  for (int i = 0; i < 300; ++i) {
    const auto probe = probe_from_wire(
        wire, net::Ipv4Address(0xcb007100u + static_cast<std::uint32_t>(i)), 22);
    if (have_previous) {
      EXPECT_TRUE(matches_nmap_pair(previous, probe.sequence)) << i;
    }
    previous = probe.sequence;
    have_previous = true;
  }
}

TEST(WireMatcher, UnicornPairsAlwaysSatisfyRelation) {
  simgen::Rng rng(79);
  simgen::WireState wire(simgen::WireTool::kUnicorn, rng.fork(3));
  telescope::ScanProbe previous;
  bool have_previous = false;
  for (int i = 0; i < 300; ++i) {
    const auto dst = net::Ipv4Address(0xcb007100u + rng.next_u32() % 65536);
    const auto port = static_cast<std::uint16_t>(1 + rng.uniform(65535));
    const auto probe = probe_from_wire(wire, dst, port);
    if (have_previous) {
      EXPECT_TRUE(matches_unicorn_pair(previous, probe)) << i;
    }
    previous = probe;
    have_previous = true;
  }
}

TEST(WireMatcher, StealthVariantsDodgeTheirFingerprints) {
  simgen::Rng rng(80);
  simgen::WireState zmap_stealth(simgen::WireTool::kZmapStealth, rng.fork(4));
  simgen::WireState masscan_stealth(simgen::WireTool::kMasscanStealth, rng.fork(5));
  int zmap_hits = 0;
  int masscan_hits = 0;
  for (int i = 0; i < 500; ++i) {
    const auto dst = net::Ipv4Address(0xcb007100u + rng.next_u32() % 65536);
    if (matches_zmap(probe_from_wire(zmap_stealth, dst, 80))) ++zmap_hits;
    if (matches_masscan(probe_from_wire(masscan_stealth, dst, 80))) ++masscan_hits;
  }
  EXPECT_LE(zmap_hits, 1);     // 1/65536 chance per probe
  EXPECT_LE(masscan_hits, 1);
}

}  // namespace
}  // namespace synscan::fingerprint
