#include "fingerprint/classifier.h"

#include <gtest/gtest.h>

#include "simgen/rng.h"
#include "simgen/wire.h"
#include "test_support.h"

namespace synscan::fingerprint {
namespace {

using synscan::testing::ProbeBuilder;

telescope::ScanProbe wire_probe(simgen::WireState& wire, std::uint32_t dst_value,
                                std::uint16_t port) {
  net::TcpFrameSpec spec;
  const net::Ipv4Address dst(dst_value);
  wire.craft(spec, dst, port);
  telescope::ScanProbe probe;
  probe.destination = dst;
  probe.source_port = spec.src_port;
  probe.destination_port = port;
  probe.sequence = spec.sequence;
  probe.ip_id = spec.ip_id;
  return probe;
}

struct ToolCase {
  simgen::WireTool wire;
  Tool expected;
};

class ClassifierToolTest : public ::testing::TestWithParam<ToolCase> {};

TEST_P(ClassifierToolTest, StreamOfProbesYieldsExpectedVerdict) {
  simgen::Rng rng(13);
  simgen::WireState wire(GetParam().wire, rng.fork(static_cast<std::uint64_t>(GetParam().wire)));
  ToolEvidence evidence;
  for (int i = 0; i < 50; ++i) {
    evidence.observe(wire_probe(wire, 0xcb007100u + rng.next_u32() % 65536,
                                static_cast<std::uint16_t>(1 + rng.uniform(65535))));
  }
  EXPECT_EQ(evidence.verdict(), GetParam().expected);
  EXPECT_EQ(evidence.probes(), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTools, ClassifierToolTest,
    ::testing::Values(ToolCase{simgen::WireTool::kZmap, Tool::kZmap},
                      ToolCase{simgen::WireTool::kZmapStealth, Tool::kUnknown},
                      ToolCase{simgen::WireTool::kMasscan, Tool::kMasscan},
                      ToolCase{simgen::WireTool::kMasscanStealth, Tool::kUnknown},
                      ToolCase{simgen::WireTool::kMirai, Tool::kMirai},
                      ToolCase{simgen::WireTool::kNmap, Tool::kNmap},
                      ToolCase{simgen::WireTool::kUnicorn, Tool::kUnicorn},
                      ToolCase{simgen::WireTool::kCustom, Tool::kUnknown}));

TEST(ToolEvidence, EmptyIsUnknown) {
  const ToolEvidence evidence;
  EXPECT_EQ(evidence.verdict(), Tool::kUnknown);
  EXPECT_EQ(evidence.probes(), 0u);
}

TEST(ToolEvidence, SingleProbeIsInsufficient) {
  ToolEvidence evidence;
  evidence.observe(ProbeBuilder().ipid(54321));
  // min_matches defaults to 2: one marked packet could be coincidence.
  EXPECT_EQ(evidence.verdict(), Tool::kUnknown);
  evidence.observe(ProbeBuilder().ipid(54321));
  EXPECT_EQ(evidence.verdict(), Tool::kZmap);
}

TEST(ToolEvidence, MixedTrafficBelowFractionStaysUnknown) {
  ToolEvidence evidence;
  // 3 ZMap-marked probes buried in 17 random ones: 15% < 50% fraction.
  simgen::Rng rng(21);
  for (int i = 0; i < 17; ++i) {
    evidence.observe(ProbeBuilder().ipid(rng.next_u16()).seq(rng.next_u32()));
  }
  for (int i = 0; i < 3; ++i) evidence.observe(ProbeBuilder().ipid(54321));
  EXPECT_EQ(evidence.verdict(), Tool::kUnknown);
  EXPECT_EQ(evidence.matches(Tool::kZmap), 3u);
}

TEST(ToolEvidence, SinglePacketToolsBeatPairwiseCoincidence) {
  // A Mirai stream with constant ports also satisfies the Unicorn pair
  // relation (all relation terms cancel); the verdict must still be
  // Mirai because single-packet evidence has priority.
  ToolEvidence evidence;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const net::Ipv4Address dst(0xcb007100u + i);
    evidence.observe(
        ProbeBuilder().to(dst).seq(dst.value()).sport(5555).port(23).ipid(7));
  }
  EXPECT_GT(evidence.matches(Tool::kUnicorn), 0u);
  EXPECT_EQ(evidence.verdict(), Tool::kMirai);
}

TEST(ToolEvidence, ConfigurableThresholds) {
  ClassifierConfig config;
  config.min_matches = 10;
  ToolEvidence evidence(config);
  for (int i = 0; i < 9; ++i) evidence.observe(ProbeBuilder().ipid(54321));
  EXPECT_EQ(evidence.verdict(), Tool::kUnknown);
  evidence.observe(ProbeBuilder().ipid(54321));
  EXPECT_EQ(evidence.verdict(), Tool::kZmap);
}

TEST(ToolEvidence, MatchesPerToolAreTracked) {
  ToolEvidence evidence;
  evidence.observe(ProbeBuilder().ipid(54321).seq(1));
  evidence.observe(ProbeBuilder().ipid(54321).seq(1));
  EXPECT_EQ(evidence.matches(Tool::kZmap), 2u);
  EXPECT_EQ(evidence.matches(Tool::kMirai), 0u);
  EXPECT_EQ(evidence.matches(Tool::kUnknown), 0u);
  // Identical sequences trivially satisfy the NMap relation.
  EXPECT_EQ(evidence.matches(Tool::kNmap), 1u);
}

TEST(ToolTally, SharesSumToOne) {
  ToolTally tally;
  tally.add(Tool::kZmap, 10);
  tally.add(Tool::kMasscan, 30);
  tally.add(Tool::kUnknown, 60);
  EXPECT_DOUBLE_EQ(tally.share(Tool::kZmap), 0.1);
  EXPECT_DOUBLE_EQ(tally.share(Tool::kMasscan), 0.3);
  EXPECT_DOUBLE_EQ(tally.known_share(), 0.4);
  EXPECT_EQ(tally.total(), 100u);
}

TEST(ToolTally, EmptyTallyHasZeroShares) {
  const ToolTally tally;
  EXPECT_EQ(tally.share(Tool::kZmap), 0.0);
  EXPECT_EQ(tally.known_share(), 0.0);
}

TEST(ToolTally, MergeAccumulates) {
  ToolTally a;
  a.add(Tool::kMirai, 5);
  ToolTally b;
  b.add(Tool::kMirai, 5);
  b.add(Tool::kNmap, 10);
  a.merge(b);
  EXPECT_EQ(a.count(Tool::kMirai), 10u);
  EXPECT_EQ(a.count(Tool::kNmap), 10u);
  EXPECT_EQ(a.total(), 20u);
}

TEST(Tool, NamesRoundTrip) {
  for (const auto tool : kAllTools) {
    EXPECT_EQ(tool_from_string(to_string(tool)), tool);
  }
  EXPECT_EQ(tool_from_string("definitely-not-a-tool"), Tool::kUnknown);
}

}  // namespace
}  // namespace synscan::fingerprint
