#include "telescope/sensor.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace synscan::telescope {
namespace {

class SensorTest : public ::testing::Test {
 protected:
  SensorTest()
      : telescope_({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 1000}},
                   {{23, 1000 * net::kMicrosPerSecond}}),
        sensor_(telescope_) {}

  static net::RawFrame frame_at(net::TimeUs t, std::vector<std::uint8_t> bytes) {
    return {t, std::move(bytes)};
  }

  net::Ipv4Address dark_dst() { return net::Ipv4Address::from_octets(203, 0, 113, 7); }
  net::Ipv4Address src() { return net::Ipv4Address::from_octets(93, 184, 216, 34); }

  Telescope telescope_;
  Sensor sensor_;
};

TEST_F(SensorTest, AcceptsSynProbe) {
  ScanProbe probe;
  const auto frame = frame_at(5, testing::syn_frame(src(), dark_dst(), 80));
  EXPECT_EQ(sensor_.classify(frame, probe), FrameClass::kScanProbe);
  EXPECT_EQ(probe.source, src());
  EXPECT_EQ(probe.destination, dark_dst());
  EXPECT_EQ(probe.destination_port, 80);
  EXPECT_EQ(probe.timestamp_us, 5);
  EXPECT_EQ(sensor_.counters().scan_probes, 1u);
}

TEST_F(SensorTest, SynAckIsBackscatter) {
  ScanProbe probe;
  const auto flags =
      net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
  const auto frame = frame_at(5, testing::syn_frame(src(), dark_dst(), 80, flags));
  EXPECT_EQ(sensor_.classify(frame, probe), FrameClass::kBackscatter);
  EXPECT_EQ(sensor_.counters().backscatter, 1u);
}

TEST_F(SensorTest, RstIsBackscatter) {
  ScanProbe probe;
  const auto frame = frame_at(
      5, testing::syn_frame(src(), dark_dst(), 80, net::flag_bit(net::TcpFlag::kRst)));
  EXPECT_EQ(sensor_.classify(frame, probe), FrameClass::kBackscatter);
}

TEST_F(SensorTest, XmasAndNullAreCountedSeparately) {
  ScanProbe probe;
  EXPECT_EQ(sensor_.classify(frame_at(1, testing::syn_frame(src(), dark_dst(), 80, 0x3f)),
                             probe),
            FrameClass::kXmasOrNull);
  EXPECT_EQ(sensor_.classify(frame_at(2, testing::syn_frame(src(), dark_dst(), 80, 0x00)),
                             probe),
            FrameClass::kXmasOrNull);
  EXPECT_EQ(sensor_.counters().xmas_or_null, 2u);
}

TEST_F(SensorTest, FinScanIsOtherTcp) {
  ScanProbe probe;
  const auto frame = frame_at(
      1, testing::syn_frame(src(), dark_dst(), 80, net::flag_bit(net::TcpFlag::kFin)));
  EXPECT_EQ(sensor_.classify(frame, probe), FrameClass::kOtherTcp);
}

TEST_F(SensorTest, NonMonitoredDestinationIgnored) {
  ScanProbe probe;
  const auto frame = frame_at(
      1, testing::syn_frame(src(), net::Ipv4Address::from_octets(203, 0, 114, 7), 80));
  EXPECT_EQ(sensor_.classify(frame, probe), FrameClass::kNotMonitored);
}

TEST_F(SensorTest, IngressBlockAppliesAfterEffectiveDate) {
  ScanProbe probe;
  const auto bytes = testing::syn_frame(src(), dark_dst(), 23);
  EXPECT_EQ(sensor_.classify(frame_at(999 * net::kMicrosPerSecond, bytes), probe),
            FrameClass::kScanProbe);
  EXPECT_EQ(sensor_.classify(frame_at(1001 * net::kMicrosPerSecond, bytes), probe),
            FrameClass::kIngressBlocked);
  EXPECT_EQ(sensor_.counters().ingress_blocked, 1u);
}

TEST_F(SensorTest, SpoofedSourcesRejected) {
  ScanProbe probe;
  const auto reserved = testing::syn_frame(
      net::Ipv4Address::from_octets(127, 0, 0, 1), dark_dst(), 80);
  EXPECT_EQ(sensor_.classify(frame_at(1, reserved), probe), FrameClass::kSpoofedSource);
  const auto private_src = testing::syn_frame(
      net::Ipv4Address::from_octets(192, 168, 1, 1), dark_dst(), 80);
  EXPECT_EQ(sensor_.classify(frame_at(1, private_src), probe),
            FrameClass::kSpoofedSource);
}

TEST_F(SensorTest, UdpAndMalformedCounted) {
  ScanProbe probe;
  net::UdpFrameSpec udp;
  udp.src_ip = src();
  udp.dst_ip = dark_dst();
  udp.dst_port = 53;
  EXPECT_EQ(sensor_.classify(frame_at(1, net::build_udp_frame(udp)), probe),
            FrameClass::kUdp);

  EXPECT_EQ(sensor_.classify(frame_at(1, {1, 2, 3}), probe), FrameClass::kMalformed);
  EXPECT_EQ(sensor_.counters().udp, 1u);
  EXPECT_EQ(sensor_.counters().malformed, 1u);
}

TEST_F(SensorTest, CountersTotalMatchesFramesFed) {
  ScanProbe probe;
  for (int i = 0; i < 7; ++i) {
    (void)sensor_.classify(frame_at(i, testing::syn_frame(src(), dark_dst(), 80)), probe);
  }
  (void)sensor_.classify(frame_at(99, {0xff}), probe);
  EXPECT_EQ(sensor_.counters().total(), 8u);
  sensor_.reset_counters();
  EXPECT_EQ(sensor_.counters().total(), 0u);
}

TEST_F(SensorTest, ProbeCarriesFingerprintFields) {
  net::TcpFrameSpec spec;
  spec.src_ip = src();
  spec.dst_ip = dark_dst();
  spec.src_port = 4444;
  spec.dst_port = 8080;
  spec.sequence = 0xfeedface;
  spec.ip_id = 54321;
  spec.window = 2048;
  spec.ttl = 57;
  ScanProbe probe;
  EXPECT_EQ(sensor_.classify(frame_at(1, net::build_tcp_frame(spec)), probe),
            FrameClass::kScanProbe);
  EXPECT_EQ(probe.sequence, 0xfeedface);
  EXPECT_EQ(probe.ip_id, 54321);
  EXPECT_EQ(probe.window, 2048);
  EXPECT_EQ(probe.ttl, 57);
  EXPECT_EQ(probe.source_port, 4444);
}

}  // namespace
}  // namespace synscan::telescope
