#include "telescope/telescope.h"

#include <gtest/gtest.h>

namespace synscan::telescope {
namespace {

TEST(Telescope, PaperDefaultSizeIsRoughlyOneSlash16) {
  const auto telescope = Telescope::paper_default();
  // §3.2: on average 71,536 unrouted addresses. The deterministic
  // population predicate lands within a small tolerance.
  EXPECT_NEAR(static_cast<double>(telescope.monitored_count()), 71536.0, 1500.0);
  EXPECT_EQ(telescope.blocks().size(), 3u);
}

TEST(Telescope, MonitorsOnlyDarkAddressesOfItsBlocks) {
  const auto telescope = Telescope::paper_default();
  // Outside any block: never monitored.
  EXPECT_FALSE(telescope.monitors(net::Ipv4Address::from_octets(8, 8, 8, 8)));
  EXPECT_FALSE(telescope.monitors(net::Ipv4Address::from_octets(198, 52, 0, 1)));

  // Inside a block: monitored iff the population predicate says dark.
  std::uint64_t dark = 0;
  const auto& block = telescope.blocks().front();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (telescope.monitors(block.prefix.at(i))) ++dark;
  }
  EXPECT_GT(dark, 300u);  // 40% population
  EXPECT_LT(dark, 500u);
}

TEST(Telescope, DarkAddressesMatchMonitorsPredicate) {
  // A small custom telescope so enumeration is cheap.
  const Telescope telescope({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 500}}, {});
  const auto dark = telescope.dark_addresses();
  EXPECT_EQ(dark.size(), telescope.monitored_count());
  for (const auto addr : dark) {
    EXPECT_TRUE(telescope.monitors(addr)) << addr.to_string();
  }
  EXPECT_NEAR(static_cast<double>(dark.size()), 128.0, 40.0);  // ~50% of 256
}

TEST(Telescope, DarkAddressAtIndexesEnumeration) {
  const Telescope telescope({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 700}}, {});
  const auto dark = telescope.dark_addresses();
  ASSERT_FALSE(dark.empty());
  EXPECT_EQ(telescope.dark_address_at(0), dark.front());
  EXPECT_EQ(telescope.dark_address_at(dark.size() - 1), dark.back());
  EXPECT_THROW((void)telescope.dark_address_at(dark.size()), std::out_of_range);
}

TEST(Telescope, FullPopulationMonitorsEverything) {
  const Telescope telescope({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 1000}}, {});
  EXPECT_EQ(telescope.monitored_count(), 256u);
}

TEST(Telescope, ZeroPopulationMonitorsNothing) {
  const Telescope telescope({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 0}}, {});
  EXPECT_EQ(telescope.monitored_count(), 0u);
}

TEST(Telescope, IngressRulesApplyFromEffectiveDate) {
  constexpr net::TimeUs kCutover = 1000 * net::kMicrosPerSecond;
  const Telescope telescope({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 1000}},
                            {{23, kCutover}, {445, kCutover}});
  EXPECT_FALSE(telescope.ingress_blocked(23, kCutover - 1));
  EXPECT_TRUE(telescope.ingress_blocked(23, kCutover));
  EXPECT_TRUE(telescope.ingress_blocked(445, kCutover + 1));
  EXPECT_FALSE(telescope.ingress_blocked(22, kCutover + 1));
}

TEST(Telescope, PaperDefaultBlocksTelnetAndSambaFrom2017) {
  const auto telescope = Telescope::paper_default();
  constexpr net::TimeUs k2016 = 1451606400LL * net::kMicrosPerSecond;  // 2016-01-01
  constexpr net::TimeUs k2018 = 1514764800LL * net::kMicrosPerSecond;  // 2018-01-01
  EXPECT_FALSE(telescope.ingress_blocked(23, k2016));
  EXPECT_TRUE(telescope.ingress_blocked(23, k2018));
  EXPECT_TRUE(telescope.ingress_blocked(445, k2018));
  EXPECT_FALSE(telescope.ingress_blocked(2323, k2018));  // Mirai's alias port stays visible
}

TEST(Telescope, RejectsEmptyAndInvalidConfig) {
  EXPECT_THROW(Telescope({}, {}), std::invalid_argument);
  EXPECT_THROW(Telescope({{*net::Ipv4Prefix::parse("10.0.0.0/24"), 1001}}, {}),
               std::invalid_argument);
}

TEST(Telescope, PopulationPredicateIsStable) {
  // The predicate must never change: generator and sensor both rely on
  // it. Pin a few concrete values.
  EXPECT_TRUE(Telescope::address_is_dark(net::Ipv4Address(0), 1000));
  EXPECT_FALSE(Telescope::address_is_dark(net::Ipv4Address(1), 0));
  std::uint64_t dark = 0;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    if (Telescope::address_is_dark(net::Ipv4Address(i), 400)) ++dark;
  }
  EXPECT_NEAR(static_cast<double>(dark), 4000.0, 200.0);
}

TEST(Telescope, ModelUsesMonitoredCount) {
  const auto telescope = Telescope::paper_default();
  const auto model = telescope.model();
  EXPECT_NEAR(model.hit_probability(),
              static_cast<double>(telescope.monitored_count()) / 4294967296.0, 1e-15);
}

}  // namespace
}  // namespace synscan::telescope
