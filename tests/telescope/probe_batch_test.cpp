#include "telescope/probe_batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/endian.h"
#include "telescope/simd.h"
#include "test_support.h"

namespace synscan::telescope {
namespace {

bool same_counters(const SensorCounters& a, const SensorCounters& b) {
  return a.scan_probes == b.scan_probes && a.backscatter == b.backscatter &&
         a.xmas_or_null == b.xmas_or_null && a.other_tcp == b.other_tcp &&
         a.udp == b.udp && a.icmp == b.icmp && a.not_monitored == b.not_monitored &&
         a.ingress_blocked == b.ingress_blocked && a.malformed == b.malformed &&
         a.spoofed_source == b.spoofed_source;
}

bool same_probe(const ScanProbe& a, const ScanProbe& b) {
  return a.timestamp_us == b.timestamp_us && a.source == b.source &&
         a.destination == b.destination && a.source_port == b.source_port &&
         a.destination_port == b.destination_port && a.sequence == b.sequence &&
         a.acknowledgment == b.acknowledgment && a.ip_id == b.ip_id &&
         a.window == b.window && a.ttl == b.ttl;
}

TEST(ProbeBatch, PushBackGetRoundTrip) {
  ProbeBatch batch;
  testing::ProbeBuilder builder;
  const ScanProbe original =
      builder.at(42).from(net::Ipv4Address::from_octets(9, 9, 9, 9)).seq(0xdeadbeef);
  batch.push_back(original);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(same_probe(batch.get(0), original));

  batch.clear();
  EXPECT_TRUE(batch.empty());
}

/// Restores the SIMD dispatch level a test overrode.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(simd::active_level()) {}
  ~SimdLevelGuard() { simd::set_active_level(saved_); }
  SimdLevelGuard(const SimdLevelGuard&) = delete;
  SimdLevelGuard& operator=(const SimdLevelGuard&) = delete;

 private:
  simd::SimdLevel saved_;
};

class ClassifyBatchDifferential : public ::testing::Test {
 protected:
  ClassifyBatchDifferential()
      : telescope_({{*net::Ipv4Prefix::parse("203.0.113.0/24"), 1000}},
                   {{23, 1000 * net::kMicrosPerSecond}}) {}

  /// Runs the same frames through `classify` and `classify_batch` and
  /// asserts identical probes and counters.
  void expect_equivalent(const std::vector<net::RawFrame>& frames) {
    Sensor reference(telescope_);
    std::vector<ScanProbe> expected;
    ScanProbe probe;
    for (const auto& frame : frames) {
      if (reference.classify(frame, probe) == FrameClass::kScanProbe) {
        expected.push_back(probe);
      }
    }

    Sensor batched(telescope_);
    std::vector<net::FrameView> views;
    views.reserve(frames.size());
    for (const auto& frame : frames) views.push_back(net::as_view(frame));
    ProbeBatch batch;
    const auto appended = batched.classify_batch(views, batch);

    EXPECT_TRUE(same_counters(reference.counters(), batched.counters()))
        << "counter histograms diverged";
    ASSERT_EQ(appended, expected.size());
    ASSERT_EQ(batch.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(same_probe(batch.get(i), expected[i])) << "probe " << i;
    }
  }

  net::Ipv4Address dark_dst() { return net::Ipv4Address::from_octets(203, 0, 113, 7); }
  net::Ipv4Address src() { return net::Ipv4Address::from_octets(93, 184, 216, 34); }

  /// One frame of every sensor class — the decision-table sweep shared
  /// by the per-level differential runs.
  std::vector<net::RawFrame> class_sweep_frames();

  Telescope telescope_;
};

std::vector<net::RawFrame> ClassifyBatchDifferential::class_sweep_frames() {
  std::vector<net::RawFrame> frames;
  const auto add = [&](net::TimeUs t, std::vector<std::uint8_t> bytes) {
    frames.push_back({t, std::move(bytes)});
  };

  add(5, testing::syn_frame(src(), dark_dst(), 80));                 // scan probe
  add(6, testing::syn_frame(src(), dark_dst(), 80,
                            net::flag_bit(net::TcpFlag::kSyn) |
                                net::flag_bit(net::TcpFlag::kAck)));  // backscatter
  add(7, testing::syn_frame(src(), dark_dst(), 80,
                            net::flag_bit(net::TcpFlag::kRst)));      // backscatter
  add(8, testing::syn_frame(src(), dark_dst(), 80, 0x3f));            // xmas
  add(9, testing::syn_frame(src(), dark_dst(), 80, 0x00));            // null
  add(10, testing::syn_frame(src(), dark_dst(), 80,
                             net::flag_bit(net::TcpFlag::kFin)));     // other tcp
  add(11, testing::syn_frame(src(), net::Ipv4Address::from_octets(203, 0, 114, 7),
                             80));                                    // not monitored
  add(12, testing::syn_frame(src(), dark_dst(), 23));                 // ingress blocked
  add(13, testing::syn_frame(net::Ipv4Address::from_octets(10, 0, 0, 1), dark_dst(),
                             80));                                    // spoofed (private)
  add(14, testing::syn_frame(net::Ipv4Address::from_octets(224, 0, 0, 1), dark_dst(),
                             80));                                    // spoofed (reserved)
  add(15, {0x01, 0x02, 0x03});                                        // malformed

  net::UdpFrameSpec udp;
  udp.src_ip = src();
  udp.dst_ip = dark_dst();
  udp.src_port = 4444;
  udp.dst_port = 53;
  add(16, net::build_udp_frame(udp));                                 // udp
  return frames;
}

TEST_F(ClassifyBatchDifferential, EveryFrameClassMatches) {
  expect_equivalent(class_sweep_frames());
}

TEST_F(ClassifyBatchDifferential, EveryCompiledSimdLevelMatchesScalarReference) {
  // The per-frame `classify` reference inside expect_equivalent is
  // always scalar, so forcing each dispatch tier turns the existing
  // differential into a kernel-vs-reference matrix. Requests above what
  // the host can run are clamped, so this passes (vacuously narrower)
  // everywhere.
  const SimdLevelGuard guard;
  for (const auto level : {simd::SimdLevel::kScalar, simd::SimdLevel::kSse2,
                           simd::SimdLevel::kAvx2}) {
    simd::set_active_level(level);
    SCOPED_TRACE(simd::to_string(simd::active_level()));
    auto frames = class_sweep_frames();
    // Long uniform probe runs fill complete 4/8-wide lane groups; the
    // sweep's irregular frames force groups to break, flush scalar and
    // reform mid-batch.
    for (std::uint32_t i = 0; i < 64; ++i) {
      frames.push_back({static_cast<net::TimeUs>(100 + i),
                        testing::syn_frame(src(), dark_dst(),
                                           static_cast<std::uint16_t>(80 + i % 3))});
    }
    expect_equivalent(frames);
  }
}

TEST_F(ClassifyBatchDifferential, SimdRowsCountOnlyVectorResolvedFrames) {
  const SimdLevelGuard guard;
  std::vector<net::RawFrame> frames;
  for (std::uint32_t i = 0; i < 16; ++i) {
    frames.push_back({static_cast<net::TimeUs>(i),
                      testing::syn_frame(src(), dark_dst(), 80)});
  }
  std::vector<net::FrameView> views;
  views.reserve(frames.size());
  for (const auto& frame : frames) views.push_back(net::as_view(frame));

  simd::set_active_level(simd::SimdLevel::kScalar);
  Sensor scalar(telescope_);
  ProbeBatch scalar_batch;
  (void)scalar.classify_batch(views, scalar_batch);
  EXPECT_EQ(scalar.simd_rows(), 0u);

  if (simd::detected_level() != simd::SimdLevel::kScalar) {
    simd::set_active_level(simd::detected_level());
    Sensor vectored(telescope_);
    ProbeBatch vector_batch;
    (void)vectored.classify_batch(views, vector_batch);
    EXPECT_GT(vectored.simd_rows(), 0u);
    EXPECT_EQ(vector_batch.size(), scalar_batch.size());
  }
}

TEST_F(ClassifyBatchDifferential, MutatedFramesNeverDiverge) {
  // Deterministic fuzz: take a valid SYN frame and sweep single-byte
  // mutations and truncations through every offset. Each mutant goes
  // through both classifiers; whatever the verdict, it must agree.
  const auto base = testing::syn_frame(src(), dark_dst(), 80);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::vector<net::RawFrame> frames;
  for (std::size_t offset = 0; offset < base.size(); ++offset) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto mutant = base;
      mutant[offset] = static_cast<std::uint8_t>(mutant[offset] ^ (1u << bit));
      frames.push_back({static_cast<net::TimeUs>(offset), std::move(mutant)});
    }
    auto truncated = base;
    truncated.resize(offset);
    frames.push_back({static_cast<net::TimeUs>(offset), std::move(truncated)});
    // And a fully random frame of this length.
    std::vector<std::uint8_t> random(offset);
    for (auto& byte : random) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      byte = static_cast<std::uint8_t>(rng >> 56);
    }
    frames.push_back({static_cast<net::TimeUs>(offset), std::move(random)});
  }
  expect_equivalent(frames);
}

TEST_F(ClassifyBatchDifferential, FragmentsAndShortTransportsMatch) {
  std::vector<net::RawFrame> frames;
  // A later fragment: valid IPv4, fragment_offset != 0.
  auto fragment = testing::syn_frame(src(), dark_dst(), 80);
  fragment[14 + 6] = 0x00;
  fragment[14 + 7] = 0x07;  // fragment offset 7
  frames.push_back({1, std::move(fragment)});

  // TCP data offset below 5 words (decode_tcp rejects it).
  auto bad_offset = testing::syn_frame(src(), dark_dst(), 80);
  bad_offset[14 + 20 + 12] = 0x10;  // data offset = 1
  frames.push_back({2, std::move(bad_offset)});

  // UDP with a length field below the 8-byte minimum.
  net::UdpFrameSpec udp;
  udp.src_ip = src();
  udp.dst_ip = dark_dst();
  auto bad_udp = net::build_udp_frame(udp);
  bad_udp[14 + 20 + 4] = 0;
  bad_udp[14 + 20 + 5] = 3;  // length = 3
  frames.push_back({3, std::move(bad_udp)});

  expect_equivalent(frames);
}

}  // namespace
}  // namespace synscan::telescope
