#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include "simgen/rng.h"

namespace synscan::stats {
namespace {

TEST(Ecdf, EmptyBehavior) {
  const Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_EQ(ecdf.fraction_at_or_below(10.0), 0.0);
  EXPECT_TRUE(ecdf.curve().empty());
  EXPECT_THROW((void)ecdf.value_at_fraction(0.5), std::logic_error);
}

TEST(Ecdf, FractionAtOrBelow) {
  const Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const Ecdf ecdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(1.99), 0.0);
}

TEST(Ecdf, ValueAtFraction) {
  const Ecdf ecdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(0.25), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(0.75), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(1.0), 40.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(0.01), 10.0);
}

TEST(Ecdf, ValueAtFractionRejectsBadInput) {
  const Ecdf ecdf({1.0});
  EXPECT_THROW((void)ecdf.value_at_fraction(0.0), std::invalid_argument);
  EXPECT_THROW((void)ecdf.value_at_fraction(1.5), std::invalid_argument);
}

TEST(Ecdf, InverseAndForwardAreConsistent) {
  simgen::Rng rng(17);
  std::vector<double> sample(500);
  for (auto& x : sample) x = rng.normal();
  const Ecdf ecdf(sample);
  for (const double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double v = ecdf.value_at_fraction(q);
    EXPECT_GE(ecdf.fraction_at_or_below(v), q);
  }
}

TEST(Ecdf, CurveIsMonotone) {
  simgen::Rng rng(23);
  std::vector<double> sample(1000);
  for (auto& x : sample) x = rng.uniform_real() * 10;
  const Ecdf ecdf(sample);
  const auto curve = ecdf.curve(64);
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 64u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
    EXPECT_GE(curve[i].f, curve[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
}

TEST(Ecdf, CurveWithFewDistinctValuesHasOneStepEach) {
  const Ecdf ecdf({1.0, 1.0, 2.0, 2.0, 2.0, 9.0});
  const auto curve = ecdf.curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].x, 1.0);
  EXPECT_NEAR(curve[0].f, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[1].x, 2.0);
  EXPECT_NEAR(curve[1].f, 5.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[2].x, 9.0);
  EXPECT_DOUBLE_EQ(curve[2].f, 1.0);
}

TEST(Ecdf, UniformSampleIsRoughlyLinear) {
  simgen::Rng rng(29);
  std::vector<double> sample(20000);
  for (auto& x : sample) x = rng.uniform_real();
  const Ecdf ecdf(sample);
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(ecdf.fraction_at_or_below(x), x, 0.02);
  }
}

}  // namespace
}  // namespace synscan::stats
