#include "stats/telescope_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace synscan::stats {
namespace {

// The paper's telescope: ~71,536 of 2^32 addresses.
constexpr std::uint64_t kPaperTelescope = 71536;

TEST(TelescopeModel, HitProbability) {
  const TelescopeModel model(kPaperTelescope);
  EXPECT_NEAR(model.hit_probability(), 71536.0 / 4294967296.0, 1e-15);
}

TEST(TelescopeModel, PaperSensitivityClaim) {
  // §3.4 claims a scanner at 100 pps of random IPv4 probes appears
  // within 1 hour with probability 99.9%. The exact geometric model
  // gives 99.75% for 71,536 monitored addresses — the paper rounds up;
  // we assert the model's own (slightly more conservative) numbers.
  const TelescopeModel model(kPaperTelescope);
  EXPECT_GT(model.detection_probability_within(100.0, 3600.0), 0.997);
  EXPECT_LT(model.seconds_to_detect(100.0, 0.999), 1.2 * 3600.0);
}

TEST(TelescopeModel, DetectionProbabilityMonotoneInProbes) {
  const TelescopeModel model(kPaperTelescope);
  double previous = 0.0;
  for (double probes = 1000; probes <= 1e6; probes *= 10) {
    const double p = model.detection_probability(probes);
    EXPECT_GT(p, previous);
    previous = p;
  }
  EXPECT_EQ(model.detection_probability(0.0), 0.0);
}

TEST(TelescopeModel, ProbesForProbabilityInvertsDetection) {
  const TelescopeModel model(kPaperTelescope);
  for (const double target : {0.5, 0.9, 0.99, 0.999}) {
    const double probes = model.probes_for_probability(target);
    EXPECT_NEAR(model.detection_probability(probes), target, 1e-9);
  }
}

TEST(TelescopeModel, ProbesForProbabilityRejectsBadTargets) {
  const TelescopeModel model(kPaperTelescope);
  EXPECT_THROW((void)model.probes_for_probability(0.0), std::invalid_argument);
  EXPECT_THROW((void)model.probes_for_probability(1.0), std::invalid_argument);
}

TEST(TelescopeModel, ExpectedHitsIsLinear) {
  const TelescopeModel model(kPaperTelescope);
  EXPECT_NEAR(model.expected_hits(1e6), 1e6 * model.hit_probability(), 1e-9);
  EXPECT_EQ(model.expected_hits(-5.0), 0.0);
}

TEST(TelescopeModel, ExtrapolationInvertsExpectation) {
  const TelescopeModel model(kPaperTelescope);
  const double hits = 500.0;
  EXPECT_NEAR(model.expected_hits(model.extrapolate_probes(hits)), hits, 1e-9);
}

TEST(TelescopeModel, FullSweepHasCoverageOne) {
  const TelescopeModel model(kPaperTelescope);
  // A scan that hits every monitored address covered all of IPv4.
  EXPECT_NEAR(model.coverage_fraction(static_cast<double>(kPaperTelescope)), 1.0, 1e-12);
  // Half the telescope ~ half the Internet.
  EXPECT_NEAR(model.coverage_fraction(kPaperTelescope / 2.0), 0.5, 1e-12);
  // Coverage clamps at 1 even for over-full hit counts (rescans).
  EXPECT_EQ(model.coverage_fraction(kPaperTelescope * 3.0), 1.0);
}

TEST(TelescopeModel, PpsExtrapolation) {
  const TelescopeModel model(kPaperTelescope);
  // A scanner at R pps for T seconds yields R*T*p hits; inverting must
  // recover R.
  const double rate = 10000.0;
  const double seconds = 600.0;
  const double hits = rate * seconds * model.hit_probability();
  EXPECT_NEAR(model.extrapolate_pps(hits, seconds), rate, 1e-6);
  EXPECT_EQ(model.extrapolate_pps(100.0, 0.0), 0.0);
}

TEST(TelescopeModel, SmallerTelescopeNeedsMoreTime) {
  const TelescopeModel big(1 << 16);
  const TelescopeModel small(1 << 12);
  EXPECT_GT(small.seconds_to_detect(100.0, 0.999), big.seconds_to_detect(100.0, 0.999));
}

TEST(TelescopeModel, RejectsDegenerateSizes) {
  EXPECT_THROW(TelescopeModel(0), std::invalid_argument);
  EXPECT_NO_THROW(TelescopeModel(std::uint64_t{1} << 32));
}

}  // namespace
}  // namespace synscan::stats
