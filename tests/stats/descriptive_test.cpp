#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simgen/rng.h"

namespace synscan::stats {
namespace {

TEST(StreamingMoments, EmptyDefaults) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 0.0);
  EXPECT_EQ(m.max(), 0.0);
}

TEST(StreamingMoments, SingleSample) {
  StreamingMoments m;
  m.add(42.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.mean(), 42.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 42.0);
  EXPECT_EQ(m.max(), 42.0);
}

TEST(StreamingMoments, KnownSample) {
  StreamingMoments m;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(m.min(), 2.0);
  EXPECT_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(StreamingMoments, MergeMatchesSequential) {
  simgen::Rng rng(3);
  StreamingMoments whole;
  StreamingMoments left;
  StreamingMoments right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 10.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(StreamingMoments, MergeWithEmptyIsIdentity) {
  StreamingMoments a;
  a.add(1.0);
  a.add(3.0);
  StreamingMoments empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingMoments b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StreamingMoments, NumericallyStableAtLargeOffset) {
  StreamingMoments m;
  for (int i = 0; i < 1000; ++i) m.add(1e9 + (i % 2));
  EXPECT_NEAR(m.variance(), 0.25025, 1e-3);
}

TEST(Quantile, MedianOfOddSample) {
  const double data[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(data), 3.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(data), 2.5);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const double data[] = {9.0, 2.0, 7.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 9.0);
}

TEST(Quantile, Type7Interpolation) {
  // numpy.quantile([10,20,30,40], 0.3) == 19.0
  const double data[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(quantile(data, 0.3), 19.0, 1e-12);
}

TEST(Quantile, ThrowsOnEmptyOrBadQ) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  const double data[] = {1.0};
  EXPECT_THROW((void)quantile(data, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(data, 1.1), std::invalid_argument);
}

TEST(Quantile, InplaceMatchesCopying) {
  simgen::Rng rng(11);
  std::vector<double> data(101);
  for (auto& x : data) x = rng.uniform_real() * 100.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    auto copy = data;
    EXPECT_DOUBLE_EQ(quantile_inplace(copy, q), quantile(data, q)) << q;
  }
}

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(data), 2.5);
}

}  // namespace
}  // namespace synscan::stats
