#include "stats/hyperloglog.h"

#include <gtest/gtest.h>

#include "simgen/rng.h"

namespace synscan::stats {
namespace {

TEST(HyperLogLog, EmptyEstimatesZero) {
  const HyperLogLog hll;
  EXPECT_NEAR(hll.estimate(), 0.0, 1e-9);
}

TEST(HyperLogLog, SmallCountsAreNearExact) {
  HyperLogLog hll;
  for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
  EXPECT_NEAR(hll.estimate(), 100.0, 5.0);  // linear-counting regime
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 200; ++i) hll.add(i);
  }
  EXPECT_NEAR(hll.estimate(), 200.0, 10.0);
}

class HllCardinalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HllCardinalityTest, ErrorWithinTheoreticalBound) {
  const auto n = GetParam();
  HyperLogLog hll(12);  // standard error ~1.63%
  simgen::Rng rng(n);
  for (std::uint64_t i = 0; i < n; ++i) hll.add(rng.next_u64());
  const double error =
      std::fabs(hll.estimate() - static_cast<double>(n)) / static_cast<double>(n);
  EXPECT_LT(error, 0.05) << "estimate " << hll.estimate() << " for n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, HllCardinalityTest,
                         ::testing::Values(1000u, 10000u, 100000u, 1000000u));

TEST(HyperLogLog, PrecisionControlsAccuracy) {
  // Telescope-scale check: 45 million distinct sources (the paper's
  // total) estimated within a few percent from 64 KiB of registers.
  HyperLogLog hll(16);
  simgen::Rng rng(45);
  constexpr std::uint64_t kSources = 4'500'000;  // 1/10 for test speed
  for (std::uint64_t i = 0; i < kSources; ++i) hll.add(rng.next_u64());
  const double error = std::fabs(hll.estimate() - kSources) / kSources;
  EXPECT_LT(error, 0.02);
}

TEST(HyperLogLog, MergeMatchesUnion) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog combined(12);
  simgen::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto value = rng.next_u64();
    if (i % 2 == 0) a.add(value);
    else b.add(value);
    combined.add(value);
  }
  // Overlap: re-add a shared chunk to both.
  simgen::Rng shared(9);
  for (int i = 0; i < 5000; ++i) {
    const auto value = shared.next_u64();
    a.add(value);
    b.add(value);
    combined.add(value);
  }
  a.merge(b);
  EXPECT_NEAR(a.estimate(), combined.estimate(), combined.estimate() * 0.01);
}

// The rollup merge (core/rollup.h) relies on merge() being an exact
// register-wise max: the identity, commutativity and idempotence checks
// below compare estimates for strict equality, not approximately.
TEST(HyperLogLog, MergeWithEmptyIsIdentity) {
  HyperLogLog populated(12);
  simgen::Rng rng(11);
  for (int i = 0; i < 10000; ++i) populated.add(rng.next_u64());
  const double before = populated.estimate();

  populated.merge(HyperLogLog(12));  // empty right-hand side
  EXPECT_EQ(populated.estimate(), before);

  HyperLogLog empty(12);  // empty left-hand side: merge is a copy
  empty.merge(populated);
  EXPECT_EQ(empty.estimate(), before);
}

TEST(HyperLogLog, MergeOfTwoEmptySketchesStaysEmpty) {
  HyperLogLog a(12);
  a.merge(HyperLogLog(12));
  EXPECT_NEAR(a.estimate(), 0.0, 1e-9);
}

TEST(HyperLogLog, MergeIsCommutativeAndIdempotent) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  simgen::Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const auto value = rng.next_u64();
    (i % 3 == 0 ? a : b).add(value);
  }
  HyperLogLog ab = a;
  ab.merge(b);
  HyperLogLog ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.estimate(), ba.estimate());

  // Folding the same shard twice must not change the union (max is
  // idempotent) — re-running a shard merge cannot inflate cardinality.
  HyperLogLog twice = ab;
  twice.merge(b);
  EXPECT_EQ(twice.estimate(), ab.estimate());
}

TEST(HyperLogLog, MergePrecisionMismatchThrows) {
  HyperLogLog a(12);
  const HyperLogLog b(10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HyperLogLog, PrecisionBoundsEnforced) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(17), std::invalid_argument);
  EXPECT_EQ(HyperLogLog(4).registers(), 16u);
  EXPECT_EQ(HyperLogLog(16).registers(), 65536u);
}

}  // namespace
}  // namespace synscan::stats
