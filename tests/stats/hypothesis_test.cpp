#include "stats/hypothesis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simgen/rng.h"

namespace synscan::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricHalf) {
  // I_{0.5}(a, a) == 0.5 for any a.
  for (const double a : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-9) << a;
  }
}

TEST(IncompleteBeta, UniformCase) {
  // I_x(1, 1) == x.
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-9);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_{0.25}(2, 3) = 1 - (1-x)^3 (1+3x) at ... use closed form for a=2,b=3:
  // I_x(2,3) = 6x^2 - 8x^3 + 3x^4.
  const double x = 0.25;
  const double expected = 6 * x * x - 8 * x * x * x + 3 * x * x * x * x;
  EXPECT_NEAR(incomplete_beta(2.0, 3.0, x), expected, 1e-9);
}

TEST(StudentT, TwoSidedPValues) {
  // Known two-sided p for t with 10 dof: t=2.228 -> p ~= 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10), 0.05, 0.002);
  // t = 0 -> p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10), 1.0, 1e-12);
  // Huge t -> p ~ 0.
  EXPECT_LT(student_t_two_sided_p(50.0, 10), 1e-6);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const auto result = pearson(x, y);
  EXPECT_DOUBLE_EQ(result.r, 1.0);
  EXPECT_DOUBLE_EQ(result.p_value, 0.0);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_DOUBLE_EQ(pearson(x, y).r, -1.0);
}

TEST(Pearson, ZeroVarianceYieldsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  const auto result = pearson(x, y);
  EXPECT_EQ(result.r, 0.0);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(Pearson, TooFewSamples) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {2, 1};
  EXPECT_EQ(pearson(x, y).r, 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW((void)pearson(x, y), std::invalid_argument);
}

TEST(Pearson, KnownRAndP) {
  // Hand-computed: r = 16 / sqrt(17.5 * 70/3) = 0.79183,
  // t = r * sqrt(4 / (1 - r^2)) = 2.5934, two-sided p (4 dof) = 0.0605.
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {2, 1, 4, 3, 7, 5};
  const auto result = pearson(x, y);
  EXPECT_NEAR(result.r, 0.79183, 1e-4);
  EXPECT_NEAR(result.p_value, 0.0605, 0.002);
}

TEST(Pearson, IndependentSamplesHaveHighP) {
  simgen::Rng rng(41);
  std::vector<double> x(200);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  const auto result = pearson(x, y);
  EXPECT_LT(std::fabs(result.r), 0.2);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(Pearson, StrongTrendDetectedInNoise) {
  simgen::Rng rng(43);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = static_cast<double>(i) + rng.normal() * 10.0;
  }
  const auto result = pearson(x, y);
  EXPECT_GT(result.r, 0.8);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_DOUBLE_EQ(spearman(x, y).r, 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y).r, 1.0, 1e-12);
}

TEST(KolmogorovSmirnov, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto result = kolmogorov_smirnov(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KolmogorovSmirnov, DisjointSamplesHaveDistanceOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 11, 12};
  const auto result = kolmogorov_smirnov(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
}

TEST(KolmogorovSmirnov, EmptyInputs) {
  const std::vector<double> a = {1.0};
  EXPECT_DOUBLE_EQ(kolmogorov_smirnov({}, {}).statistic, 0.0);
  EXPECT_DOUBLE_EQ(kolmogorov_smirnov(a, {}).statistic, 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_smirnov(a, {}).p_value, 0.0);
}

TEST(KolmogorovSmirnov, SameDistributionHighP) {
  simgen::Rng rng(47);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  const auto result = kolmogorov_smirnov(a, b);
  EXPECT_LT(result.statistic, 0.15);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KolmogorovSmirnov, ShiftedDistributionLowP) {
  simgen::Rng rng(53);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal() + 1.0;
  const auto result = kolmogorov_smirnov(a, b);
  EXPECT_GT(result.statistic, 0.3);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KolmogorovSmirnov, KnownSmallCase) {
  // scipy.stats.ks_2samp([1,2,3,4], [1.5,2.5,3.5,4.5]) -> D = 0.25
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {1.5, 2.5, 3.5, 4.5};
  EXPECT_NEAR(kolmogorov_smirnov(a, b).statistic, 0.25, 1e-12);
}

}  // namespace
}  // namespace synscan::stats
