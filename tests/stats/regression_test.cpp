#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simgen/rng.h"

namespace synscan::stats {
namespace {

TEST(LinearFit, ExactLine) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {3, 5, 7, 9};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 2.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 1.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
  EXPECT_DOUBLE_EQ(fit.predict(10.0), 21.0);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  simgen::Rng rng(5);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 0.5 * x[i] + 10.0 + rng.normal() * 5.0;
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 10.0, 2.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).n, 0u);
  const double one_x[] = {3.0};
  const double one_y[] = {7.0};
  const auto single = linear_fit(one_x, one_y);
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
  EXPECT_DOUBLE_EQ(single.intercept, 7.0);

  const double flat_x[] = {2.0, 2.0, 2.0};
  const double ys[] = {1.0, 2.0, 3.0};
  const auto flat = linear_fit(flat_x, ys);
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.intercept, 2.0);  // mean of y
}

TEST(LinearFit, SizeMismatchThrows) {
  const double x[] = {1.0, 2.0};
  const double y[] = {1.0};
  EXPECT_THROW((void)linear_fit(x, y), std::invalid_argument);
}

TEST(LinearFit, ConstantYHasPerfectFlatFit) {
  const double x[] = {1, 2, 3};
  const double y[] = {5, 5, 5};
  const auto fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(AnnualGrowthRate, PaperHeadline) {
  // §5.3: scan volume grows 63% per annum 2015-2020. Six points with
  // exactly that growth recover it.
  std::vector<double> series = {100.0};
  for (int i = 0; i < 5; ++i) series.push_back(series.back() * 1.63);
  EXPECT_NEAR(annual_growth_rate(series), 0.63, 1e-12);
}

TEST(AnnualGrowthRate, ThirtyFoldOverTenYears) {
  // Table 1: 11M -> 345M packets/day over nine year-steps ~= 46.7%/year.
  const double series[] = {11e6, 1, 1, 1, 1, 1, 1, 1, 1, 345e6};
  EXPECT_NEAR(annual_growth_rate(series), std::pow(345.0 / 11.0, 1.0 / 9.0) - 1.0,
              1e-12);
  const double endpoints[] = {11e6, 345e6};
  EXPECT_NEAR(annual_growth_rate(endpoints), 345.0 / 11.0 - 1.0, 1e-9);
}

TEST(AnnualGrowthRate, DegenerateInputs) {
  EXPECT_EQ(annual_growth_rate({}), 0.0);
  const double one[] = {5.0};
  EXPECT_EQ(annual_growth_rate(one), 0.0);
  const double with_zero[] = {0.0, 10.0};
  EXPECT_EQ(annual_growth_rate(with_zero), 0.0);
  const double declining[] = {100.0, 25.0};
  EXPECT_NEAR(annual_growth_rate(declining), -0.75, 1e-12);
}

}  // namespace
}  // namespace synscan::stats
