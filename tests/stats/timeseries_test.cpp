#include "stats/timeseries.h"

#include <gtest/gtest.h>

namespace synscan::stats {
namespace {

TEST(BucketedSeries, BucketsByWidth) {
  BucketedSeries series(0, 100);
  series.add(0);
  series.add(99);
  series.add(100);
  series.add(250, 3);
  EXPECT_EQ(series.at(0), 2u);
  EXPECT_EQ(series.at(1), 1u);
  EXPECT_EQ(series.at(2), 3u);
  EXPECT_EQ(series.bucket_count(), 3u);
}

TEST(BucketedSeries, EarlySamplesClampToBucketZero) {
  BucketedSeries series(1000, 100);
  series.add(5);
  EXPECT_EQ(series.at(0), 1u);
}

TEST(BucketedSeries, DenseFillsGaps) {
  BucketedSeries series(0, 10);
  series.add(5);
  series.add(35);
  const auto dense = series.dense();
  ASSERT_EQ(dense.size(), 4u);
  EXPECT_EQ(dense[0], 1u);
  EXPECT_EQ(dense[1], 0u);
  EXPECT_EQ(dense[2], 0u);
  EXPECT_EQ(dense[3], 1u);
}

TEST(BucketedSeries, EmptyHasNoBuckets) {
  BucketedSeries series(0, 10);
  EXPECT_EQ(series.bucket_count(), 0u);
  EXPECT_TRUE(series.dense().empty());
}

TEST(BucketedSeries, RejectsNonPositiveWidth) {
  EXPECT_THROW(BucketedSeries(0, 0), std::invalid_argument);
  EXPECT_THROW(BucketedSeries(0, -5), std::invalid_argument);
}

TEST(ChangeFactors, SymmetricUpAndDown) {
  // 100 -> 200 and 200 -> 100 are both "a factor of 2".
  const std::uint64_t up[] = {100, 200};
  const std::uint64_t down[] = {200, 100};
  EXPECT_DOUBLE_EQ(change_factors(up)[0], 2.0);
  EXPECT_DOUBLE_EQ(change_factors(down)[0], 2.0);
}

TEST(ChangeFactors, StableWeekIsFactorOne) {
  const std::uint64_t series[] = {50, 50, 50};
  const auto factors = change_factors(series);
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[0], 1.0);
  EXPECT_DOUBLE_EQ(factors[1], 1.0);
}

TEST(ChangeFactors, ZeroTransitionsUseZeroFactor) {
  const std::uint64_t series[] = {0, 10, 0};
  const auto factors = change_factors(series, 64.0);
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[0], 64.0);  // appearance
  EXPECT_DOUBLE_EQ(factors[1], 64.0);  // disappearance
}

TEST(ChangeFactors, BothZeroPairsSkipped) {
  const std::uint64_t series[] = {0, 0, 5, 5};
  const auto factors = change_factors(series);
  ASSERT_EQ(factors.size(), 2u);  // (0,0) skipped; (0,5) and (5,5) counted
}

TEST(ChangeFactors, ShortSeriesYieldNothing) {
  EXPECT_TRUE(change_factors({}).empty());
  const std::uint64_t one[] = {7};
  EXPECT_TRUE(change_factors(one).empty());
}

TEST(ChangeFactors, AlwaysAtLeastOne) {
  const std::uint64_t series[] = {3, 9, 7, 7, 2, 100};
  for (const auto factor : change_factors(series)) {
    EXPECT_GE(factor, 1.0);
  }
}

}  // namespace
}  // namespace synscan::stats
