#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace synscan::stats {
namespace {

TEST(LinearHistogram, BinAssignment) {
  LinearHistogram hist(0.0, 10.0, 10);
  hist.add(0.0);
  hist.add(0.999);
  hist.add(5.0);
  hist.add(9.999);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(5), 1u);
  EXPECT_EQ(hist.count(9), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(LinearHistogram, UnderAndOverflow) {
  LinearHistogram hist(0.0, 10.0, 5);
  hist.add(-1.0);
  hist.add(10.0);
  hist.add(1e9);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(LinearHistogram, WeightsAccumulate) {
  LinearHistogram hist(0.0, 10.0, 2);
  hist.add(1.0, 5);
  hist.add(6.0, 3);
  EXPECT_EQ(hist.count(0), 5u);
  EXPECT_EQ(hist.count(1), 3u);
}

TEST(LinearHistogram, BinGeometry) {
  LinearHistogram hist(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(hist.bin_left(0), 10.0);
  EXPECT_DOUBLE_EQ(hist.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(hist.bin_left(4), 18.0);
}

TEST(LinearHistogram, ModeBin) {
  LinearHistogram hist(0.0, 3.0, 3);
  hist.add(0.5);
  hist.add(1.5);
  hist.add(1.6);
  hist.add(2.5);
  EXPECT_EQ(hist.mode_bin(), 1u);
}

TEST(LinearHistogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(LinearHistogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, DecadeSpacing) {
  LogHistogram hist(1.0, 1e6, 1);  // one bin per decade
  hist.add(2.0);      // decade [1, 10)
  hist.add(200.0);    // decade [100, 1000)
  hist.add(999.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(2), 2u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(LogHistogram, NonPositiveSaturatesLow) {
  LogHistogram hist(1.0, 100.0);
  hist.add(0.0);
  hist.add(-5.0);
  EXPECT_EQ(hist.count(0), 2u);
}

TEST(LogHistogram, BinEdgesArePowers) {
  LogHistogram hist(1.0, 1000.0, 1);
  EXPECT_NEAR(hist.bin_left(0), 1.0, 1e-9);
  EXPECT_NEAR(hist.bin_left(1), 10.0, 1e-9);
  EXPECT_NEAR(hist.bin_left(2), 100.0, 1e-9);
}

TEST(LogHistogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace synscan::stats
