#include "simgen/services.h"

#include <gtest/gtest.h>

namespace synscan::simgen {
namespace {

TEST(ServiceDeployment, DeterministicPerHost) {
  const ServiceDeployment deployment(42);
  const auto host = net::Ipv4Address::from_octets(1, 2, 3, 4);
  EXPECT_EQ(deployment.open_ports(host), deployment.open_ports(host));
}

TEST(ServiceDeployment, DifferentSeedsDiffer) {
  const ServiceDeployment a(1);
  const ServiceDeployment b(2);
  // Over a sample, the exposure sets must differ.
  int differing = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const net::Ipv4Address host(0x01020000u + i);
    if (a.open_ports(host) != b.open_ports(host)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(ServiceDeployment, MostHostsExposeNothing) {
  const ServiceDeployment deployment(7);
  std::uint32_t exposed = 0;
  constexpr std::uint32_t kSample = 5000;
  for (std::uint32_t i = 0; i < kSample; ++i) {
    if (!deployment.open_ports(net::Ipv4Address(0x20000000u + i * 977)).empty()) {
      ++exposed;
    }
  }
  // ~8% exposure rate.
  EXPECT_NEAR(static_cast<double>(exposed) / kSample, 0.08, 0.02);
}

TEST(ServiceDeployment, ExposedHostsRunFewServices) {
  const ServiceDeployment deployment(9);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto ports = deployment.open_ports(net::Ipv4Address(0x30000000u + i));
    EXPECT_LE(ports.size(), 5u);
  }
}

TEST(ServiceDeployment, VerticalScanFindsCommonServicesOnTop) {
  const ServiceDeployment deployment(11);
  const auto counts = deployment.services_per_port(30000);
  ASSERT_EQ(counts.size(), 65536u);
  // HTTP and HTTPS lead the deployment profile.
  EXPECT_GT(counts[80], counts[3306]);
  EXPECT_GT(counts[443], counts[21]);
  EXPECT_GT(counts[22], counts[6379]);
  // And there is a long tail on unexpected ports (LZR's finding).
  std::uint64_t tail = 0;
  for (std::uint32_t port = 1024; port < 65536; ++port) {
    if (port == 8080 || port == 8443 || port == 8000 || port == 8888 || port == 2222 ||
        port == 2323 || port == 3306 || port == 3389 || port == 5432 || port == 5900 ||
        port == 6379 || port == 9200 || port == 1433 || port == 8081 || port == 10000 ||
        port == 5060) {
      continue;
    }
    tail += counts[port];
  }
  EXPECT_GT(tail, 0u);
}

TEST(ServiceDeployment, SampleSizeScalesCounts) {
  const ServiceDeployment deployment(13);
  const auto small = deployment.services_per_port(5000);
  const auto large = deployment.services_per_port(20000);
  std::uint64_t small_total = 0;
  std::uint64_t large_total = 0;
  for (std::size_t port = 0; port < 65536; ++port) {
    small_total += small[port];
    large_total += large[port];
  }
  EXPECT_GT(large_total, 2 * small_total);
}

}  // namespace
}  // namespace synscan::simgen
