#include "simgen/wire.h"

#include <gtest/gtest.h>

#include "fingerprint/matchers.h"
#include "simgen/rng.h"

namespace synscan::simgen {
namespace {

net::TcpFrameSpec craft(WireState& wire, std::uint32_t dst, std::uint16_t port) {
  net::TcpFrameSpec spec;
  wire.craft(spec, net::Ipv4Address(dst), port);
  return spec;
}

TEST(WireState, ZmapStampsIpIdAndKeepsSourcePort) {
  WireState wire(WireTool::kZmap, Rng(1));
  const auto a = craft(wire, 0x01020304, 80);
  const auto b = craft(wire, 0x0a0b0c0d, 443);
  EXPECT_EQ(a.ip_id, fingerprint::kZmapIpId);
  EXPECT_EQ(b.ip_id, fingerprint::kZmapIpId);
  EXPECT_EQ(a.src_port, b.src_port);  // per-invocation fixed source port
  EXPECT_NE(a.sequence, b.sequence);
}

TEST(WireState, ZmapStealthRandomizesIpId) {
  WireState wire(WireTool::kZmapStealth, Rng(2));
  int marked = 0;
  for (int i = 0; i < 300; ++i) {
    if (craft(wire, 0x01020304u + static_cast<std::uint32_t>(i), 80).ip_id ==
        fingerprint::kZmapIpId) {
      ++marked;
    }
  }
  EXPECT_LE(marked, 1);
}

TEST(WireState, MasscanSatisfiesItsRelation) {
  WireState wire(WireTool::kMasscan, Rng(3));
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t dst = 0xc0000200u + static_cast<std::uint32_t>(i);
    const auto port = static_cast<std::uint16_t>(1 + i * 7);
    const auto spec = craft(wire, dst, port);
    EXPECT_EQ(spec.ip_id, fingerprint::masscan_ip_id(dst, port, spec.sequence));
  }
}

TEST(WireState, MiraiSequenceEqualsDestination) {
  WireState wire(WireTool::kMirai, Rng(4));
  for (int i = 0; i < 50; ++i) {
    const std::uint32_t dst = 0xc0000200u + static_cast<std::uint32_t>(i * 13);
    EXPECT_EQ(craft(wire, dst, 23).sequence, dst);
  }
}

TEST(WireState, MiraiVariesSourcePort) {
  WireState wire(WireTool::kMirai, Rng(5));
  const auto a = craft(wire, 1, 23).src_port;
  const auto b = craft(wire, 2, 23).src_port;
  const auto c = craft(wire, 3, 23).src_port;
  EXPECT_TRUE(a != b || b != c);
}

TEST(WireState, NmapSequencesSatisfyPairRelation) {
  WireState wire(WireTool::kNmap, Rng(6));
  const auto first = craft(wire, 100, 22).sequence;
  for (int i = 0; i < 100; ++i) {
    const auto seq = craft(wire, 200u + static_cast<std::uint32_t>(i), 22).sequence;
    EXPECT_TRUE(fingerprint::matches_nmap_pair(first, seq));
  }
}

TEST(WireState, NmapSessionsUseDifferentSecrets) {
  WireState session1(WireTool::kNmap, Rng(7));
  WireState session2(WireTool::kNmap, Rng(8));
  // Sequences from different sessions usually break the relation.
  int cross_matches = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = craft(session1, 1, 22).sequence;
    const auto b = craft(session2, 1, 22).sequence;
    if (fingerprint::matches_nmap_pair(a, b)) ++cross_matches;
  }
  EXPECT_LT(cross_matches, 3);
}

TEST(WireState, UnicornSatisfiesPairRelation) {
  WireState wire(WireTool::kUnicorn, Rng(9));
  net::TcpFrameSpec previous;
  bool have_previous = false;
  for (int i = 0; i < 100; ++i) {
    net::TcpFrameSpec spec;
    const net::Ipv4Address dst(0xcb000000u + static_cast<std::uint32_t>(i * 31));
    const auto port = static_cast<std::uint16_t>(1 + i * 3);
    wire.craft(spec, dst, port);
    if (have_previous) {
      const std::uint32_t lhs = previous.sequence ^ spec.sequence;
      const std::uint32_t rhs =
          (previous.dst_ip.value() ^ spec.dst_ip.value()) ^
          static_cast<std::uint32_t>(previous.src_port ^ spec.src_port) ^
          (static_cast<std::uint32_t>(previous.dst_port ^ spec.dst_port) << 16);
      EXPECT_EQ(lhs, rhs) << i;
    }
    previous = spec;
    have_previous = true;
  }
}

TEST(WireState, AllToolsSetSynFlagAndTargets) {
  Rng rng(10);
  for (const auto tool :
       {WireTool::kZmap, WireTool::kZmapStealth, WireTool::kMasscan,
        WireTool::kMasscanStealth, WireTool::kMirai, WireTool::kNmap, WireTool::kUnicorn,
        WireTool::kCustom}) {
    WireState wire(tool, rng.fork(static_cast<std::uint64_t>(tool)));
    const auto spec = craft(wire, 0x12345678, 8080);
    EXPECT_EQ(spec.flags, net::flag_bit(net::TcpFlag::kSyn));
    EXPECT_EQ(spec.dst_ip.value(), 0x12345678u);
    EXPECT_EQ(spec.dst_port, 8080);
    EXPECT_GE(spec.ttl, 48);
  }
}

TEST(WireState, BuiltFramesAreValidOnTheWire) {
  Rng rng(11);
  WireState wire(WireTool::kMasscan, rng.fork(1));
  net::TcpFrameSpec spec;
  spec.src_ip = net::Ipv4Address::from_octets(5, 5, 5, 5);
  wire.craft(spec, net::Ipv4Address::from_octets(198, 51, 0, 1), 443);
  const auto frame = net::build_tcp_frame(spec);
  EXPECT_TRUE(net::verify_tcp_checksum(frame));
  const auto decoded = net::decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->tcp()->is_syn_probe());
}

}  // namespace
}  // namespace synscan::simgen
