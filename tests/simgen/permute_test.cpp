#include "simgen/permute.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace synscan::simgen {
namespace {

class PermutationSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PermutationSizeTest, IsABijection) {
  const auto n = GetParam();
  const Permutation perm(0xfeedbeef, n);
  std::vector<bool> seen(n, false);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto image = perm.at(i);
    ASSERT_LT(image, n);
    ASSERT_FALSE(seen[image]) << "collision at " << i;
    seen[image] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizeTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 16u, 17u, 100u, 255u, 256u,
                                           257u, 1000u, 4096u, 65535u, 65536u, 71536u));

TEST(Permutation, DifferentKeysGiveDifferentOrders) {
  const Permutation a(1, 1000);
  const Permutation b(2, 1000);
  int same = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    if (a.at(i) == b.at(i)) ++same;
  }
  EXPECT_LT(same, 30);  // a couple of fixed coincidences are fine
}

TEST(Permutation, SameKeyIsDeterministic) {
  const Permutation a(99, 500);
  const Permutation b(99, 500);
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
  }
}

TEST(Permutation, ShufflesRatherThanShifts) {
  // The permutation should not be close to the identity or a rotation:
  // count fixed points and adjacent mappings.
  const Permutation perm(0xabcdef, 10000);
  int fixed = 0;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    if (perm.at(i) == i) ++fixed;
  }
  EXPECT_LT(fixed, 30);  // expectation is ~1 for a random permutation
}

TEST(Permutation, CoversFullPortRange) {
  // The institutional full-range scans rely on exact coverage of
  // [0, 65536).
  const Permutation perm(0x5eed, 65536);
  std::vector<bool> seen(65536, false);
  for (std::uint32_t i = 0; i < 65536; ++i) seen[perm.at(i)] = true;
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 65536);
}

TEST(Permutation, SizeOneMapsToZero) {
  const Permutation perm(123, 1);
  EXPECT_EQ(perm.at(0), 0u);
}

}  // namespace
}  // namespace synscan::simgen
