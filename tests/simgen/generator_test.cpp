#include "simgen/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/pipeline.h"
#include "enrich/known_scanners.h"
#include "simgen/ecosystem.h"

namespace synscan::simgen {
namespace {

const telescope::Telescope& small_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {});
  return telescope;
}

YearConfig tiny_config() {
  YearConfig config;
  config.year = 2020;
  config.window_days = 2;
  config.start_time = 0;
  config.seed = 424242;
  config.port_table = {{80, 50}, {22, 30}, {443, 20}};
  config.noise_sources = 20;
  config.backscatter_fraction = 0.05;

  GroupSpec group;
  group.name = "test-masscan";
  group.tool = WireTool::kMasscan;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 3;
  group.campaigns = 6;
  group.hits_median = 300;
  group.hits_sigma = 1.2;
  group.pps_median = 500000;  // small telescope -> keep gaps short
  group.pps_sigma = 1.2;
  config.groups.push_back(group);
  return config;
}

TEST(TrafficGenerator, EmitsFramesInTimestampOrder) {
  TrafficGenerator generator(tiny_config(), small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  net::TimeUs previous = -1;
  std::uint64_t frames = 0;
  const auto stats = generator.run([&](const net::RawFrame& frame) {
    EXPECT_GE(frame.timestamp_us, previous);
    previous = frame.timestamp_us;
    ++frames;
  });
  EXPECT_EQ(stats.total_frames, frames);
  EXPECT_GT(stats.scan_frames, 1000u);
  EXPECT_GT(stats.backscatter_frames, 0u);
}

TEST(TrafficGenerator, IsDeterministic) {
  std::vector<std::uint64_t> digest1;
  std::vector<std::uint64_t> digest2;
  const auto run = [&](std::vector<std::uint64_t>& digest) {
    TrafficGenerator generator(tiny_config(), small_telescope(),
                               enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& frame) {
      std::uint64_t h = static_cast<std::uint64_t>(frame.timestamp_us);
      for (const auto b : frame.bytes) h = h * 131 + b;
      digest.push_back(h);
    });
  };
  run(digest1);
  run(digest2);
  EXPECT_EQ(digest1, digest2);
}

TEST(TrafficGenerator, DifferentSeedsProduceDifferentTraffic) {
  auto config = tiny_config();
  const auto digest_of = [&](const YearConfig& c) {
    std::uint64_t digest = 0;
    TrafficGenerator generator(c, small_telescope(),
                               enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) {
      for (const auto b : f.bytes) digest = digest * 1099511628211ull + b;
    });
    return digest;
  };
  const auto checksum1 = digest_of(config);
  config.seed ^= 0x1234;
  const auto checksum2 = digest_of(config);
  EXPECT_NE(checksum1, checksum2);
}

TEST(TrafficGenerator, AllScanFramesTargetTheTelescope) {
  TrafficGenerator generator(tiny_config(), small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& frame) {
    const auto decoded = net::decode_frame(frame.bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(small_telescope().monitors(decoded->ip.destination))
        << decoded->ip.destination.to_string();
  });
}

TEST(TrafficGenerator, FramesAreWireValid) {
  TrafficGenerator generator(tiny_config(), small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  std::uint64_t checked = 0;
  (void)generator.run([&](const net::RawFrame& frame) {
    if (checked++ % 37 != 0) return;  // sample for speed
    const auto decoded = net::decode_frame(frame.bytes);
    ASSERT_TRUE(decoded.has_value());
    if (decoded->tcp() != nullptr) {
      EXPECT_TRUE(net::verify_tcp_checksum(frame.bytes));
    }
  });
}

TEST(TrafficGenerator, CampaignsAreDetectableByTracker) {
  core::Pipeline pipeline(small_telescope());
  TrafficGenerator generator(tiny_config(), small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();
  // 6 planned campaigns with ~300 hits each; all should qualify.
  EXPECT_EQ(result.campaigns.size(), 6u);
  for (const auto& campaign : result.campaigns) {
    EXPECT_EQ(campaign.tool, fingerprint::Tool::kMasscan);
    EXPECT_GE(campaign.distinct_destinations, 100u);
  }
  // Noise sources were all sub-threshold (a slow noise source whose
  // inter-probe gap exceeds the expiry splits into several flows).
  EXPECT_GE(result.tracker.subthreshold_flows, 20u);
}

TEST(TrafficGenerator, ShardedGroupSharesPortAndStart) {
  auto config = tiny_config();
  config.groups.clear();
  config.noise_sources = 0;
  config.backscatter_fraction = 0.0;
  GroupSpec shard;
  shard.name = "shard";
  shard.tool = WireTool::kZmap;
  shard.pool = enrich::ScannerType::kHosting;
  shard.sources = 8;
  shard.sharded = true;
  shard.hits_median = 200;
  shard.hits_sigma = 1.1;
  shard.pps_median = 500000;
  shard.pps_sigma = 1.1;
  config.groups.push_back(shard);

  TrafficGenerator generator(config, small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  std::unordered_set<std::uint16_t> ports;
  std::unordered_set<std::uint32_t> sources;
  (void)generator.run([&](const net::RawFrame& frame) {
    const auto decoded = net::decode_frame(frame.bytes);
    ASSERT_TRUE(decoded.has_value());
    ports.insert(decoded->tcp()->destination_port);
    sources.insert(decoded->ip.source.value());
  });
  EXPECT_EQ(ports.size(), 1u);   // one logical scan, one port
  EXPECT_EQ(sources.size(), 8u);  // split across all shard members
  // All shard members live in one /24 (the paper's collaborating-subnet
  // signature, §6.4).
  std::unordered_set<std::uint32_t> subnets;
  for (const auto source : sources) subnets.insert(source >> 8);
  EXPECT_EQ(subnets.size(), 1u);
}

TEST(TrafficGenerator, InstitutionalGroupUsesOrgPrefix) {
  auto config = tiny_config();
  config.groups.clear();
  config.noise_sources = 0;
  config.backscatter_fraction = 0.0;
  GroupSpec inst;
  inst.name = "inst:Censys";
  inst.organization = "Censys";
  inst.pool = enrich::ScannerType::kInstitutional;
  inst.tool = WireTool::kZmap;
  inst.sources = 1;
  inst.recur_days = 1.0;
  inst.hits_median = 150;
  inst.hits_sigma = 1.1;
  inst.pps_median = 500000;
  inst.pps_sigma = 1.1;
  inst.ports = PortPlanSpec::subset(500, 99);
  config.groups.push_back(inst);

  const auto* censys = enrich::find_known_scanner("Censys");
  ASSERT_NE(censys, nullptr);
  TrafficGenerator generator(config, small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  std::unordered_set<std::uint16_t> ports;
  (void)generator.run([&](const net::RawFrame& frame) {
    const auto decoded = net::decode_frame(frame.bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(censys->prefix.contains(decoded->ip.source));
    ports.insert(decoded->tcp()->destination_port);
  });
  EXPECT_GT(ports.size(), 50u);
  EXPECT_LE(ports.size(), 500u);
}

TEST(TrafficGenerator, UnknownOrganizationThrows) {
  auto config = tiny_config();
  GroupSpec bad;
  bad.name = "inst:nope";
  bad.organization = "No Such Org";
  config.groups.push_back(bad);
  EXPECT_THROW(TrafficGenerator(config, small_telescope(),
                                enrich::InternetRegistry::synthetic_default()),
               std::invalid_argument);
}

TEST(TrafficGenerator, EventCampaignsClusterAfterDisclosure) {
  auto config = tiny_config();
  config.groups.clear();
  config.noise_sources = 0;
  config.backscatter_fraction = 0.0;
  config.window_days = 10;
  EventSpec event;
  event.name = "cve-test";
  event.port = 9999;
  event.day = 3.0;
  event.surge_campaigns = 30;
  event.decay_days = 1.0;
  event.hits_median = 200;
  config.events.push_back(event);

  TrafficGenerator generator(config, small_telescope(),
                             enrich::InternetRegistry::synthetic_default());
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  (void)generator.run([&](const net::RawFrame& frame) {
    const auto decoded = net::decode_frame(frame.bytes);
    if (decoded->tcp()->destination_port != 9999) return;
    (frame.timestamp_us < 3 * net::kMicrosPerDay ? before : after) += 1;
  });
  EXPECT_EQ(before, 0u);
  EXPECT_GT(after, 1000u);
}

}  // namespace
}  // namespace synscan::simgen
