#include "simgen/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace synscan::simgen {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng fork1 = parent.fork(1);
  Rng fork2 = parent.fork(1);
  // Two forks taken sequentially consume parent state and differ.
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(10)];
  for (const auto count : counts) {
    EXPECT_NEAR(count, kDraws / 10, 500);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 200);
  Rng rng2(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.bernoulli(0.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(Rng, LognormalMedianMatches) {
  Rng rng(21);
  std::vector<double> sample(20001);
  for (auto& x : sample) x = rng.lognormal(100.0, 2.0);
  std::nth_element(sample.begin(), sample.begin() + 10000, sample.end());
  EXPECT_NEAR(sample[10000], 100.0, 5.0);
  // Sigma of 1 collapses to the median exactly.
  EXPECT_DOUBLE_EQ(rng.lognormal(42.0, 1.0), 42.0);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(23);
  const double weights[] = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted(weights)];
  EXPECT_NEAR(counts[0], kDraws / 10, 500);
  EXPECT_NEAR(counts[1], 3 * kDraws / 10, 800);
  EXPECT_NEAR(counts[2], 6 * kDraws / 10, 800);
}

TEST(Rng, WeightedDegenerateInputs) {
  Rng rng(25);
  EXPECT_EQ(rng.weighted({}), 0u);
  const double zeros[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(zeros), 0u);
  const double single[] = {5.0};
  EXPECT_EQ(rng.weighted(single), 0u);
}

TEST(Rng, HashLabelIsStableAndDistinct) {
  EXPECT_EQ(Rng::hash_label("censys"), Rng::hash_label("censys"));
  EXPECT_NE(Rng::hash_label("censys"), Rng::hash_label("shodan"));
  EXPECT_NE(Rng::hash_label(""), Rng::hash_label("a"));
}

}  // namespace
}  // namespace synscan::simgen
