#include "simgen/ecosystem.h"

#include <gtest/gtest.h>

namespace synscan::simgen {
namespace {

TEST(Ecosystem, AllYearsBuild) {
  const auto configs = all_year_configs();
  ASSERT_EQ(configs.size(), 10u);
  for (const auto& config : configs) {
    EXPECT_GE(config.year, kFirstYear);
    EXPECT_LE(config.year, kLastYear);
    EXPECT_FALSE(config.groups.empty()) << config.year;
    EXPECT_GT(config.noise_sources, 0u) << config.year;
    EXPECT_FALSE(config.port_table.empty()) << config.year;
    EXPECT_FALSE(config.noise_port_table.empty()) << config.year;
  }
}

TEST(Ecosystem, WindowsMatchPaperBounds) {
  // §3.2: between 29 and 61 days of uninterrupted data per year.
  for (const auto& config : all_year_configs()) {
    EXPECT_GE(config.window_days, 29.0) << config.year;
    EXPECT_LE(config.window_days, 61.0) << config.year;
  }
}

TEST(Ecosystem, WindowsStartInTheRightYear) {
  for (const auto& config : all_year_configs()) {
    // January 15 of `year`: between 45*365 and 55*365 days after epoch
    // for our range; verify the year via a coarse round trip.
    const auto days = config.start_time / net::kMicrosPerDay;
    const auto approx_year = 1970 + static_cast<int>(days / 365.25);
    EXPECT_EQ(approx_year, config.year);
  }
}

TEST(Ecosystem, OutOfRangeYearThrows) {
  EXPECT_THROW((void)year_config(2014), std::invalid_argument);
  EXPECT_THROW((void)year_config(2025), std::invalid_argument);
  EXPECT_THROW((void)year_config(2020, 0.0), std::invalid_argument);
}

TEST(Ecosystem, ScaleReducesVolume) {
  const auto full = year_config(2020, 1.0);
  const auto half = year_config(2020, 2.0);
  EXPECT_GT(full.noise_sources, half.noise_sources);

  std::uint64_t full_campaigns = 0;
  std::uint64_t half_campaigns = 0;
  for (const auto& group : full.groups) {
    if (group.recur_days == 0 && !group.sharded) full_campaigns += group.campaigns;
  }
  for (const auto& group : half.groups) {
    if (group.recur_days == 0 && !group.sharded) half_campaigns += group.campaigns;
  }
  EXPECT_GT(full_campaigns, half_campaigns);
}

TEST(Ecosystem, MiraiAbsentBefore2017) {
  for (const int year : {2015, 2016}) {
    for (const auto& group : year_config(year).groups) {
      EXPECT_NE(group.tool, WireTool::kMirai) << year << " " << group.name;
    }
  }
  bool mirai_2017 = false;
  for (const auto& group : year_config(2017).groups) {
    if (group.tool == WireTool::kMirai) mirai_2017 = true;
  }
  EXPECT_TRUE(mirai_2017);
}

TEST(Ecosystem, InstitutionalRosterGrows) {
  const auto count_inst = [](const YearConfig& config) {
    std::size_t n = 0;
    for (const auto& group : config.groups) {
      if (!group.organization.empty()) ++n;
    }
    return n;
  };
  const auto inst_2015 = count_inst(year_config(2015));
  const auto inst_2020 = count_inst(year_config(2020));
  const auto inst_2024 = count_inst(year_config(2024));
  EXPECT_LT(inst_2015, inst_2020);
  EXPECT_LT(inst_2020, inst_2024);
  EXPECT_EQ(inst_2024, 40u);
}

TEST(Ecosystem, StealthInstitutionsOnlyInLateYears) {
  const auto has_stealth = [](const YearConfig& config) {
    for (const auto& group : config.groups) {
      if (group.organization.empty()) continue;
      if (group.tool == WireTool::kZmapStealth ||
          group.tool == WireTool::kMasscanStealth) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(has_stealth(year_config(2020)));
  EXPECT_TRUE(has_stealth(year_config(2023)));
  EXPECT_TRUE(has_stealth(year_config(2024)));
}

TEST(Ecosystem, ShardingAppearsFrom2020) {
  const auto shard_count = [](const YearConfig& config) {
    std::size_t n = 0;
    for (const auto& group : config.groups) {
      if (group.sharded) ++n;
    }
    return n;
  };
  EXPECT_EQ(shard_count(year_config(2015)), 0u);
  EXPECT_GE(shard_count(year_config(2020)), 1u);
  EXPECT_GE(shard_count(year_config(2024)), 3u);
}

TEST(Ecosystem, FullRangeScannersOnlyLate) {
  const auto full_range_groups = [](const YearConfig& config) {
    std::size_t n = 0;
    for (const auto& group : config.groups) {
      if (group.ports.choice == PortChoice::kFullRange ||
          (group.ports.choice == PortChoice::kSubset &&
           group.ports.subset_size == 65536)) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(full_range_groups(year_config(2015)), 0u);
  EXPECT_GE(full_range_groups(year_config(2024)), 4u);
}

TEST(Ecosystem, DisclosureStudyHasTenEvents) {
  const auto config = disclosure_study_config();
  EXPECT_EQ(config.events.size(), 10u);
  std::uint16_t previous_port = 0;
  double previous_day = 0.0;
  for (const auto& event : config.events) {
    EXPECT_NE(event.port, previous_port);
    EXPECT_GT(event.day, previous_day);
    previous_port = event.port;
    previous_day = event.day;
  }
}

TEST(Ecosystem, MultiPortNoiseShareGrows) {
  // Fig. 3's driver: more sources probe several ports as years pass.
  EXPECT_LT(year_config(2015).noise_multiport_fraction,
            year_config(2020).noise_multiport_fraction);
  EXPECT_LE(year_config(2020).noise_multiport_fraction,
            year_config(2022).noise_multiport_fraction);
  EXPECT_NEAR(year_config(2015).noise_multiport_fraction, 0.17, 1e-9);
}

TEST(Ecosystem, InstitutionalCensusBiasesPopularPorts) {
  // Port-census scanners revisit popular service ports (Fig. 5: 443 is
  // institutional-heavy); academics use a fixed HTTPS-first list.
  bool subset_with_bias = false;
  bool academic_list_with_443 = false;
  for (const auto& group : year_config(2022).groups) {
    if (group.organization.empty()) continue;
    if (group.ports.choice == PortChoice::kSubset && group.ports.popular_bias > 0.0) {
      subset_with_bias = true;
      EXPECT_FALSE(group.ports.popular.empty());
    }
    if (group.ports.choice == PortChoice::kList && !group.ports.list.empty() &&
        group.ports.list.front() == 443) {
      academic_list_with_443 = true;
    }
  }
  EXPECT_TRUE(subset_with_bias);
  EXPECT_TRUE(academic_list_with_443);
}

TEST(Ecosystem, SpeedOrderingMatchesPaper) {
  // §6.3: Mirai slowest, NMap above Masscan's bulk median, ZMap fastest.
  double mirai = 0;
  double nmap = 0;
  double masscan = 0;
  double zmap = 0;
  for (const auto& group : year_config(2020).groups) {
    if (group.name == "mirai-botnet") mirai = group.pps_median;
    if (group.name == "nmap-classics") nmap = group.pps_median;
    if (group.name == "masscan-host") masscan = group.pps_median;
    if (group.name == "zmap-us") zmap = group.pps_median;
  }
  ASSERT_GT(mirai, 0);
  ASSERT_GT(masscan, 0);
  EXPECT_LT(mirai, masscan);
  EXPECT_LT(masscan, nmap);
  EXPECT_LT(nmap, zmap);
}

TEST(Ecosystem, PaperRowsAvailableForAllYears) {
  for (int year = kFirstYear; year <= kLastYear; ++year) {
    const auto& row = paper_row(year);
    EXPECT_EQ(row.year, year);
    EXPECT_GT(row.packets_per_day, 0.0);
    EXPECT_GT(row.scans_per_month, 0.0);
  }
  EXPECT_THROW((void)paper_row(2014), std::invalid_argument);
}

TEST(Ecosystem, PaperRowsEncodeTheHeadlineTrends) {
  // 30-fold traffic growth, ZMap's 2024 surge, Mirai's 2017 dominance.
  EXPECT_NEAR(paper_row(2024).packets_per_day / paper_row(2015).packets_per_day, 31.4,
              1.0);
  EXPECT_GT(paper_row(2024).zmap_scan_share, 0.5);
  EXPECT_GT(paper_row(2017).mirai_scan_share, 0.4);
  EXPECT_GT(paper_row(2015).nmap_scan_share, 0.3);
}

}  // namespace
}  // namespace synscan::simgen
