#include "enrich/known_scanners.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace synscan::enrich {
namespace {

TEST(KnownScanners, CatalogSizeMatchesPaperCounts) {
  // Appendix A: 36 organizations identified in 2023, 40 in 2024.
  EXPECT_EQ(active_known_scanners(2023), 36u);
  EXPECT_EQ(active_known_scanners(2024), 40u);
}

TEST(KnownScanners, FullRangeScannersIn2024) {
  // Fig. 8: Censys, Palo Alto (and others) cover all 65,536 ports by 2024.
  for (const char* name : {"Censys", "Palo Alto Cortex Xpanse", "Shodan", "Criminal IP"}) {
    const auto* spec = find_known_scanner(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->ports_2024, 65536u) << name;
  }
}

TEST(KnownScanners, OnypheScalesUpBetween2023And2024) {
  // §6.8: Onyphe went from under half the ports to the full range.
  const auto* spec = find_known_scanner("Onyphe");
  ASSERT_NE(spec, nullptr);
  EXPECT_LT(spec->ports_2023, 32768u);
  EXPECT_EQ(spec->ports_2024, 65536u);
}

TEST(KnownScanners, PartialCoverageOrgs) {
  // Shadowserver and Rapid7 are "not yet scanning all available ports".
  for (const char* name : {"Shadowserver Foundation", "Rapid7 Project Sonar"}) {
    const auto* spec = find_known_scanner(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_LT(spec->ports_2024, 65536u) << name;
    EXPECT_GT(spec->ports_2024, 1000u) << name;
  }
}

TEST(KnownScanners, UniversitiesStaySmallAndFlat) {
  // §6.8: universities target only a few ports with no growth.
  for (const auto& spec : known_scanner_specs()) {
    if (!spec.academic) continue;
    EXPECT_LE(spec.ports_2024, 64u) << spec.name;
    EXPECT_EQ(spec.ports_2023, spec.ports_2024) << spec.name;
  }
}

TEST(KnownScanners, PrefixesAreDisjointAndInstitutionalSpace) {
  std::unordered_set<std::uint32_t> bases;
  for (const auto& spec : known_scanner_specs()) {
    EXPECT_TRUE(bases.insert(spec.prefix.base().value()).second) << spec.name;
    // All carved from 64.0.0.0/10.
    EXPECT_EQ(spec.prefix.base().octet(0), 64) << spec.name;
    EXPECT_EQ(spec.prefix.length(), 22) << spec.name;
  }
}

TEST(KnownScanners, AsnsAreUnique) {
  std::unordered_set<std::uint32_t> asns;
  for (const auto& spec : known_scanner_specs()) {
    EXPECT_TRUE(asns.insert(spec.asn).second) << spec.name;
  }
}

TEST(KnownScanners, NewcomersAbsentIn2023) {
  const auto* spec = find_known_scanner("Validin");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->ports_2023, 0u);
  EXPECT_GT(spec->ports_2024, 0u);
}

TEST(KnownScanners, LookupByNameWorks) {
  EXPECT_NE(find_known_scanner("Censys"), nullptr);
  EXPECT_EQ(find_known_scanner("Acme Scanning Inc"), nullptr);
}

TEST(KnownScanners, InstitutionalScannersAreFast) {
  // §6.8: institutions scan magnitudes faster than residential sources.
  for (const auto& spec : known_scanner_specs()) {
    EXPECT_GE(spec.packets_per_second, 8000.0) << spec.name;
  }
}

}  // namespace
}  // namespace synscan::enrich
