#include "enrich/etl.h"

#include <gtest/gtest.h>

namespace synscan::enrich {
namespace {

TEST(AsciiLower, Lowercases) {
  EXPECT_EQ(ascii_lower("CeNSys-Scanner.NET"), "censys-scanner.net");
  EXPECT_EQ(ascii_lower(""), "");
}

TEST(Etl, Phase1IpMatchWins) {
  const KnownScannerEtl etl;
  const auto* censys = find_known_scanner("Censys");
  ASSERT_NE(censys, nullptr);

  SourceIntelRecord record;
  record.ip = censys->prefix.at(9);
  record.whois_network_name = "something unrelated";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kIpMatch);
  EXPECT_EQ(result.organization, "Censys");
}

TEST(Etl, Phase2KeywordInWhois) {
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 9);  // outside all prefixes
  record.whois_network_name = "CENSYS-ARIN-01";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kKeywordMatch);
  EXPECT_EQ(result.organization, "Censys");
  EXPECT_EQ(result.matched_field, 0);
}

TEST(Etl, Phase2FieldPriorityOrder) {
  // A keyword in reverse DNS must report field 3, not an earlier field.
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 10);
  record.reverse_dns = "scan-07.shodan.io";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kKeywordMatch);
  EXPECT_EQ(result.organization, "Shodan");
  EXPECT_EQ(result.matched_field, 3);
}

TEST(Etl, BannerIsLastResort) {
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 11);
  record.service_banner = "HTTP/1.1 200 OK Server: stretchoid-agent";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kKeywordMatch);
  EXPECT_EQ(result.organization, "Stretchoid");
  EXPECT_EQ(result.matched_field, 4);
}

TEST(Etl, UnmatchedRecord) {
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 12);
  record.whois_network_name = "COMCAST-RESIDENTIAL";
  record.reverse_dns = "c-73-158-1-2.hsd1.ca.comcast.net";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kUnmatched);
}

TEST(Etl, ManualKeywordsExtendTheList) {
  KnownScannerEtl etl;
  const auto before = etl.keyword_count();
  etl.add_keyword("sonar-probe", "Rapid7 Project Sonar");
  EXPECT_EQ(etl.keyword_count(), before + 1);

  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 13);
  record.reverse_dns = "SONAR-PROBE-3.example.org";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kKeywordMatch);
  EXPECT_EQ(result.organization, "Rapid7 Project Sonar");
}

TEST(Etl, GenericTokensAreNotKeywords) {
  // "university" alone must not attribute traffic to any university.
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 14);
  record.organization_name = "University of Nowhere";
  // "university" is filtered as generic; "nowhere" is not a catalog word.
  EXPECT_EQ(etl.match(record).phase, EtlPhase::kUnmatched);
}

TEST(Etl, CaseInsensitiveMatching) {
  const KnownScannerEtl etl;
  SourceIntelRecord record;
  record.ip = net::Ipv4Address::from_octets(9, 9, 9, 15);
  record.abuse_email = "abuse@ONYPHE.io";
  const auto result = etl.match(record);
  EXPECT_EQ(result.phase, EtlPhase::kKeywordMatch);
  EXPECT_EQ(result.organization, "Onyphe");
  EXPECT_EQ(result.matched_field, 2);
}

TEST(Etl, BatchSummaryCounts) {
  const KnownScannerEtl etl;
  const auto* censys = find_known_scanner("Censys");
  ASSERT_NE(censys, nullptr);

  std::vector<SourceIntelRecord> records(4);
  records[0].ip = censys->prefix.at(3);  // phase 1
  records[1].ip = net::Ipv4Address::from_octets(9, 1, 1, 1);
  records[1].reverse_dns = "probe.shadowserver.org";  // phase 2
  records[2].ip = net::Ipv4Address::from_octets(9, 1, 1, 2);  // unmatched
  records[3].ip = net::Ipv4Address::from_octets(9, 1, 1, 3);
  records[3].whois_network_name = "driftnet.io scanning";  // phase 2

  const auto summary = etl.run(records);
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.ip_matched, 1u);
  EXPECT_EQ(summary.keyword_matched, 2u);
  EXPECT_EQ(summary.matched(), 3u);
}

}  // namespace
}  // namespace synscan::enrich
