#include "enrich/registry.h"

#include <gtest/gtest.h>

#include "enrich/known_scanners.h"

namespace synscan::enrich {
namespace {

TEST(CountryCode, Construction) {
  EXPECT_EQ(CountryCode("NL").to_string(), "NL");
  EXPECT_TRUE(CountryCode("NL").known());
  EXPECT_FALSE(CountryCode().known());
  EXPECT_EQ(CountryCode().to_string(), "??");
  EXPECT_EQ(CountryCode("TOOLONG").to_string(), "??");
}

TEST(CountryCode, PackedIsUniquePerCode) {
  EXPECT_NE(CountryCode("NL").packed(), CountryCode("LN").packed());
  EXPECT_EQ(CountryCode("US").packed(), CountryCode("US").packed());
}

TEST(InternetRegistry, LongestPrefixMatchWins) {
  std::vector<PrefixRecord> records;
  records.push_back({*net::Ipv4Prefix::parse("10.0.0.0/8"), 100, CountryCode("US"),
                     ScannerType::kResidential, "big-pool"});
  records.push_back({*net::Ipv4Prefix::parse("10.1.0.0/16"), 200, CountryCode("DE"),
                     ScannerType::kHosting, "carve-out"});
  const InternetRegistry registry(std::move(records));

  const auto* broad = registry.lookup(net::Ipv4Address::from_octets(10, 2, 0, 1));
  ASSERT_NE(broad, nullptr);
  EXPECT_EQ(broad->asn, 100u);

  const auto* narrow = registry.lookup(net::Ipv4Address::from_octets(10, 1, 2, 3));
  ASSERT_NE(narrow, nullptr);
  EXPECT_EQ(narrow->asn, 200u);
  EXPECT_EQ(narrow->country, CountryCode("DE"));
  EXPECT_EQ(narrow->type, ScannerType::kHosting);
}

TEST(InternetRegistry, MissReturnsNull) {
  std::vector<PrefixRecord> records;
  records.push_back({*net::Ipv4Prefix::parse("10.0.0.0/8"), 1, CountryCode("US"),
                     ScannerType::kResidential, ""});
  const InternetRegistry registry(std::move(records));
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(11, 0, 0, 1)), nullptr);
  EXPECT_EQ(registry.type_of(net::Ipv4Address::from_octets(11, 0, 0, 1)),
            ScannerType::kUnknown);
  EXPECT_FALSE(registry.country_of(net::Ipv4Address::from_octets(11, 0, 0, 1)).known());
}

TEST(InternetRegistry, EmptyRegistryAlwaysMisses) {
  const InternetRegistry registry({});
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(1, 2, 3, 4)), nullptr);
}

TEST(SyntheticRegistry, CoversAllScannerTypes) {
  const auto& registry = InternetRegistry::synthetic_default();
  EXPECT_FALSE(registry.records_of(ScannerType::kResidential).empty());
  EXPECT_FALSE(registry.records_of(ScannerType::kHosting).empty());
  EXPECT_FALSE(registry.records_of(ScannerType::kEnterprise).empty());
  EXPECT_FALSE(registry.records_of(ScannerType::kInstitutional).empty());
}

TEST(SyntheticRegistry, AvoidsTelescopeSpace) {
  const auto& registry = InternetRegistry::synthetic_default();
  for (const auto& record : registry.records()) {
    EXPECT_FALSE(record.prefix.contains(net::Ipv4Address::from_octets(198, 51, 1, 1)))
        << record.prefix.to_string();
    EXPECT_FALSE(record.prefix.contains(net::Ipv4Address::from_octets(203, 0, 100, 1)))
        << record.prefix.to_string();
    EXPECT_FALSE(record.prefix.contains(net::Ipv4Address::from_octets(192, 88, 1, 1)))
        << record.prefix.to_string();
  }
}

TEST(SyntheticRegistry, AvoidsReservedSpace) {
  const auto& registry = InternetRegistry::synthetic_default();
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(10, 1, 1, 1)), nullptr);
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(127, 0, 0, 1)), nullptr);
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(224, 0, 0, 1)), nullptr);
  EXPECT_EQ(registry.lookup(net::Ipv4Address::from_octets(192, 168, 0, 1)), nullptr);
}

TEST(SyntheticRegistry, AllocationsAreDisjoint) {
  // LPM would paper over overlaps; the synthetic plan promises disjoint
  // allocations, so any address resolving to a record must be contained
  // by exactly one record.
  const auto& registry = InternetRegistry::synthetic_default();
  const auto records = registry.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const bool overlap = records[i].prefix.contains(records[j].prefix.base()) ||
                           records[j].prefix.contains(records[i].prefix.base());
      EXPECT_FALSE(overlap) << records[i].prefix.to_string() << " vs "
                            << records[j].prefix.to_string();
    }
  }
}

TEST(SyntheticRegistry, KnownScannersResolveToInstitutional) {
  const auto& registry = InternetRegistry::synthetic_default();
  for (const auto& spec : known_scanner_specs()) {
    const auto* record = registry.lookup(spec.prefix.at(5));
    ASSERT_NE(record, nullptr) << spec.name;
    EXPECT_EQ(record->type, ScannerType::kInstitutional) << spec.name;
    EXPECT_EQ(record->organization, spec.name);
    EXPECT_EQ(record->country, spec.country);
  }
}

TEST(SyntheticRegistry, MajorCountriesPresent) {
  const auto& registry = InternetRegistry::synthetic_default();
  for (const char* code : {"CN", "US", "NL", "RU", "BR", "IR", "TW", "VN"}) {
    EXPECT_FALSE(registry.records_of(CountryCode(code)).empty()) << code;
  }
}

TEST(SyntheticRegistry, FptEnterpriseAsnPresent) {
  // §6.7 calls out ASN 18403 (FPT, VN) as the JSON-RPC scanning origin.
  const auto& registry = InternetRegistry::synthetic_default();
  bool found = false;
  for (const auto& record : registry.records()) {
    if (record.asn == 18403) {
      found = true;
      EXPECT_EQ(record.country, CountryCode("VN"));
      EXPECT_EQ(record.type, ScannerType::kEnterprise);
      EXPECT_EQ(record.organization, "FPT-AS-AP");
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScannerType, NamesAreStable) {
  EXPECT_EQ(to_string(ScannerType::kInstitutional), "institutional");
  EXPECT_EQ(to_string(ScannerType::kHosting), "hosting");
  EXPECT_EQ(to_string(ScannerType::kEnterprise), "enterprise");
  EXPECT_EQ(to_string(ScannerType::kResidential), "residential");
  EXPECT_EQ(to_string(ScannerType::kUnknown), "unknown");
}

}  // namespace
}  // namespace synscan::enrich
