#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace synscan::server {
namespace {

Request parse_ok(std::string_view payload) {
  Request request;
  std::string error;
  EXPECT_TRUE(parse_request(payload, request, error)) << error;
  return request;
}

std::string parse_err(std::string_view payload) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request(payload, request, error));
  return error;
}

TEST(Protocol, ParsesBareVerbs) {
  EXPECT_EQ(parse_ok("PING").kind, RequestKind::kPing);
  EXPECT_EQ(parse_ok("STATUS").kind, RequestKind::kStatus);
  EXPECT_EQ(parse_ok("SHUTDOWN").kind, RequestKind::kShutdown);
}

TEST(Protocol, LoadTakesPathVerbatimIncludingSpaces) {
  const auto request = parse_ok("LOAD /data/dir with spaces/window.pcap");
  EXPECT_EQ(request.kind, RequestKind::kLoad);
  EXPECT_EQ(request.argument, "/data/dir with spaces/window.pcap");
}

TEST(Protocol, LoadWithoutPathIsAnError) {
  EXPECT_NE(parse_err("LOAD").find("capture path"), std::string::npos);
  EXPECT_NE(parse_err("LOAD   ").find("capture path"), std::string::npos);
}

TEST(Protocol, QueryParsesReportAndFilters) {
  const auto request = parse_ok("QUERY campaigns tool=zmap min_packets=100");
  EXPECT_EQ(request.kind, RequestKind::kQuery);
  EXPECT_EQ(request.argument, "campaigns");
  ASSERT_EQ(request.filters.size(), 2u);
  EXPECT_EQ(request.filters[0].key, "tool");
  EXPECT_EQ(request.filters[0].value, "zmap");
  EXPECT_EQ(request.filters[1].key, "min_packets");
  EXPECT_EQ(request.filters[1].value, "100");
}

TEST(Protocol, QueryToleratesExtraSpacing) {
  const auto request = parse_ok("QUERY   counters  ");
  EXPECT_EQ(request.argument, "counters");
  EXPECT_TRUE(request.filters.empty());
}

TEST(Protocol, QueryRejectsMalformedFilters) {
  EXPECT_NE(parse_err("QUERY campaigns toolzmap").find("key=value"), std::string::npos);
  EXPECT_NE(parse_err("QUERY campaigns =zmap").find("key=value"), std::string::npos);
  EXPECT_NE(parse_err("QUERY").find("report name"), std::string::npos);
}

TEST(Protocol, RejectsUnknownVerbsEmptyAndBinary) {
  EXPECT_NE(parse_err("FROBNICATE").find("unknown command"), std::string::npos);
  EXPECT_NE(parse_err("").find("empty"), std::string::npos);
  EXPECT_NE(parse_err(std::string_view("PI\x01NG", 5)).find("printable"),
            std::string::npos);
  EXPECT_NE(parse_err("PING\nSTATUS").find("printable"), std::string::npos);
}

TEST(Protocol, TrailingJunkAfterCompleteCommandIsAnError) {
  EXPECT_NE(parse_err("PING extra").find("trailing"), std::string::npos);
  EXPECT_NE(parse_err("STATUS now").find("trailing"), std::string::npos);
}

TEST(Protocol, ResponseEnvelopeRoundTrip) {
  std::string_view body;
  std::string error;
  EXPECT_TRUE(parse_response("OK\n{\"a\":1}\n", body, error));
  EXPECT_EQ(body, "{\"a\":1}\n");
  EXPECT_TRUE(parse_response("OK\n", body, error));
  EXPECT_EQ(body, "");
  EXPECT_FALSE(parse_response(error_response("nope"), body, error));
  EXPECT_EQ(error, "nope");
  EXPECT_FALSE(parse_response("garbage", body, error));
  EXPECT_NE(error.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace synscan::server
