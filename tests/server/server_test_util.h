// Shared fixtures for the synscand server tests: a small telescope, a
// deterministic campaign-shaped capture and per-test scratch space.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "net/packet.h"
#include "pcap/pcap.h"
#include "simgen/rng.h"
#include "telescope/telescope.h"

namespace synscan::testing {

inline const telescope::Telescope& server_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}}, {{23, 0}});
  return telescope;
}

/// Burst-structured SYN traffic (per-source runs) with backscatter and
/// off-telescope noise — enough campaigns for filters to bite.
inline void write_server_capture(const std::filesystem::path& path,
                                 std::uint64_t frames = 20'000,
                                 std::uint64_t seed = 99) {
  simgen::Rng rng(seed);
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  net::TimeUs now = 0;
  std::uint32_t burst_source = 0;
  std::uint16_t burst_port = 80;
  std::uint32_t burst_left = 0;
  for (std::uint64_t i = 0; i < frames; ++i) {
    now += 40;
    const std::uint64_t draw = rng.next_u64() % 100;
    net::TcpFrameSpec tcp;
    if (burst_left == 0) {
      burst_source = 0x05000000u + (rng.next_u32() % 512) * 977u;
      burst_port = (rng.next_u64() % 4 == 0) ? 443 : 80;
      burst_left = 16 + rng.next_u32() % 48;
    }
    --burst_left;
    tcp.src_ip = net::Ipv4Address(burst_source);
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    tcp.dst_port = burst_port;
    tcp.sequence = rng.next_u32();
    tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
    if (draw < 90) {
      // scan probe (defaults: SYN)
    } else if (draw < 95) {
      tcp.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
    } else {
      tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);  // off-net
    }
    frame.timestamp_us = now;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
  writer.flush();
}

/// A fresh scratch directory unique to this call (tests may run in
/// parallel across processes, so the pid is part of the name).
inline std::filesystem::path make_scratch_dir(const std::string& tag) {
  static std::atomic<unsigned> counter{0};
  auto dir = std::filesystem::temp_directory_path() /
             ("synscan_server_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace synscan::testing
