#include "server/frame.h"

#include <gtest/gtest.h>

#include <string>

namespace synscan::server {
namespace {

TEST(Frame, EncodeRoundTripsThroughDecoder) {
  FrameDecoder decoder;
  decoder.absorb(encode_frame("QUERY counters"));
  std::string payload;
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "QUERY counters");
  EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, AppendFrameMatchesEncodeFrame) {
  std::string appended("prefix");
  append_frame(appended, "PING");
  EXPECT_EQ(appended.substr(6), encode_frame("PING"));
}

TEST(Frame, HeaderIsLittleEndianLength) {
  const auto encoded = encode_frame("abc");
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(encoded[0], '\x03');
  EXPECT_EQ(encoded[1], '\x00');
  EXPECT_EQ(encoded[2], '\x00');
  EXPECT_EQ(encoded[3], '\x00');
}

TEST(Frame, PartialDeliveryByteByByte) {
  const auto encoded = encode_frame("STATUS");
  FrameDecoder decoder;
  std::string payload;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    decoder.absorb(std::string_view(&encoded[i], 1));
    ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kNeedMore) << "byte " << i;
  }
  decoder.absorb(std::string_view(&encoded[encoded.size() - 1], 1));
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "STATUS");
}

TEST(Frame, CoalescedFramesDecodeInOrder) {
  std::string wire;
  append_frame(wire, "one");
  append_frame(wire, "");
  append_frame(wire, "three");
  FrameDecoder decoder;
  decoder.absorb(wire);
  std::string payload;
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "one");
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "");  // zero-length frames are valid at this layer
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "three");
  EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::kNeedMore);
}

TEST(Frame, MaxLengthPayloadAccepted) {
  FrameDecoder decoder(64);
  const std::string body(64, 'x');
  decoder.absorb(encode_frame(body));
  std::string payload;
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, body);
}

TEST(Frame, OversizedFramePoisonsDecoder) {
  FrameDecoder decoder(64);
  decoder.absorb(encode_frame(std::string(65, 'x')));
  std::string payload;
  EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::kTooLarge);
  // Poisoned for good: even a well-formed follow-up frame is rejected,
  // because stream framing can no longer be trusted.
  decoder.absorb(encode_frame("PING"));
  EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::kTooLarge);
}

TEST(Frame, OversizeDetectedFromHeaderAlone) {
  FrameDecoder decoder(1024);
  const std::string header("\xff\xff\xff\x7f", 4);  // ~2 GiB advertised
  decoder.absorb(header);
  std::string payload;
  EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::kTooLarge);
}

TEST(Frame, ManySequentialFramesCompactTheBuffer) {
  FrameDecoder decoder;
  std::string payload;
  for (int i = 0; i < 5000; ++i) {
    decoder.absorb(encode_frame("QUERY campaigns tool=zmap"));
    ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
    ASSERT_EQ(payload, "QUERY campaigns tool=zmap");
  }
  EXPECT_EQ(decoder.buffered(), 0u);
}

}  // namespace
}  // namespace synscan::server
