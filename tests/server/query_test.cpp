#include "server/query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>

#include "core/analysis_session.h"
#include "enrich/registry.h"
#include "report/json.h"
#include "server/protocol.h"
#include "server_test_util.h"

namespace synscan::server {
namespace {

namespace fs = std::filesystem;

/// One analyzed capture shared by every test in this file (analysis is
/// the expensive part; queries against it are const).
class QueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(testing::make_scratch_dir("query"));
    const auto capture = *dir_ / "window.pcap";
    testing::write_server_capture(capture);
    analysis_ = new core::AnalyzedCapture(core::analyze_capture(
        capture, testing::server_telescope(),
        enrich::InternetRegistry::synthetic_default(), 1, {}));
    ASSERT_FALSE(analysis_->result.campaigns.empty());
  }

  static void TearDownTestSuite() {
    delete analysis_;
    analysis_ = nullptr;
    fs::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string query(std::string_view command) {
    Request request;
    std::string error;
    EXPECT_TRUE(parse_request(command, request, error)) << error;
    std::string out;
    EXPECT_TRUE(run_query(*analysis_, request, out, error)) << error;
    return out;
  }

  static std::string query_error(std::string_view command) {
    Request request;
    std::string error;
    EXPECT_TRUE(parse_request(command, request, error)) << error;
    std::string out;
    EXPECT_FALSE(run_query(*analysis_, request, out, error));
    EXPECT_TRUE(out.empty()) << "failed queries must not emit partial output";
    return error;
  }

  static fs::path* dir_;
  static core::AnalyzedCapture* analysis_;
};

fs::path* QueryTest::dir_ = nullptr;
core::AnalyzedCapture* QueryTest::analysis_ = nullptr;

TEST_F(QueryTest, CountersMatchesDirectEmission) {
  std::string expected;
  report::append_counters_json(expected, analysis_->result);
  expected.push_back('\n');
  EXPECT_EQ(query("QUERY counters"), expected);
}

TEST_F(QueryTest, AnalyzeIsCountersPlusCampaignJsonl) {
  std::string expected;
  report::append_counters_json(expected, analysis_->result);
  expected.push_back('\n');
  report::append_campaigns_jsonl(expected, analysis_->result.campaigns);
  EXPECT_EQ(query("QUERY analyze"), expected);
}

TEST_F(QueryTest, CampaignsUnfilteredListsEveryCampaign) {
  const auto out = query("QUERY campaigns");
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            analysis_->result.campaigns.size());
}

TEST_F(QueryTest, MinPacketsFilterDropsSmallCampaigns) {
  EXPECT_EQ(query("QUERY campaigns min_packets=18446744073709551615"), "");
  const auto all = query("QUERY campaigns min_packets=0");
  EXPECT_EQ(all, query("QUERY campaigns"));
}

TEST_F(QueryTest, ToolFilterMatchesCampaignFields) {
  std::size_t expected = 0;
  for (const auto& campaign : analysis_->result.campaigns) {
    if (campaign.tool == fingerprint::Tool::kUnknown) ++expected;
  }
  const auto out = query("QUERY campaigns tool=unknown");
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            expected);
}

TEST_F(QueryTest, MaxPortsFilterCapsThePortList) {
  const auto capped = query("QUERY campaigns max_ports=1");
  // Every emitted line still reports its true distinct port count; the
  // visible list is what shrinks. The capped emission can never be
  // longer than the default one.
  EXPECT_LE(capped.size(), query("QUERY campaigns").size());
  EXPECT_NE(capped.find("\"distinct_ports\":"), std::string::npos);
}

TEST_F(QueryTest, UnknownReportAndBadFiltersError) {
  EXPECT_NE(query_error("QUERY bogus").find("unknown report"), std::string::npos);
  EXPECT_NE(query_error("QUERY campaigns tool=notatool").find("unknown tool"),
            std::string::npos);
  EXPECT_NE(query_error("QUERY campaigns min_packets=abc").find("non-negative"),
            std::string::npos);
  EXPECT_NE(query_error("QUERY campaigns nope=1").find("unknown filter"),
            std::string::npos);
  EXPECT_NE(query_error("QUERY counters tool=zmap").find("no filters"),
            std::string::npos);
  EXPECT_NE(query_error("QUERY analyze tool=zmap").find("no filters"),
            std::string::npos);
}

}  // namespace
}  // namespace synscan::server
