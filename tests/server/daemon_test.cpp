// Integration tests: a real synscand on a real socket, per test case.
//
// Each harness binds a private Unix socket (or loopback TCP port) in a
// scratch directory and runs `Daemon::serve()` on a background thread;
// clients are the production `server::Client`. Covers the pinned
// byte-equivalence between `QUERY analyze` and the offline analysis
// emission, response ordering under pipelining, the robustness paths
// (garbage frames, oversized frames, idle timeout), graceful shutdown
// via SHUTDOWN and SIGTERM, and the poll(2) fallback event loop.
#include "server/daemon.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "core/analysis_session.h"
#include "enrich/registry.h"
#include "report/json.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server_test_util.h"

namespace synscan::server {
namespace {

namespace fs = std::filesystem;

class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig config = {})
      : dir_(testing::make_scratch_dir("daemon")) {
    if (config.unix_socket.empty() && !config.tcp) {
      config.unix_socket = (dir_ / "synscand.sock").string();
    }
    daemon_ = std::make_unique<Daemon>(testing::server_telescope(),
                                       enrich::InternetRegistry::synthetic_default(),
                                       std::move(config));
  }

  ~DaemonHarness() {
    if (thread_.joinable()) {
      daemon_->request_shutdown();
      thread_.join();
    }
    daemon_.reset();
    fs::remove_all(dir_);
  }

  void start() {
    thread_ = std::thread([this] { daemon_->serve(); });
  }

  void join() { thread_.join(); }

  [[nodiscard]] Daemon& daemon() { return *daemon_; }
  [[nodiscard]] const fs::path& dir() const { return dir_; }

  [[nodiscard]] Client connect() {
    return Client::connect_unix(daemon_->unix_socket_path());
  }

  /// Writes (once) and returns the fixture capture for this harness.
  [[nodiscard]] std::string capture() {
    const auto path = dir_ / "window.pcap";
    if (!fs::exists(path)) testing::write_server_capture(path);
    return path.string();
  }

 private:
  fs::path dir_;
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

/// Body of an OK response; fails the test on an ERR envelope.
std::string ok_body(Client& client, std::string_view command) {
  std::string_view body;
  std::string error;
  const auto response = client.roundtrip(command);
  EXPECT_TRUE(parse_response(response, body, error)) << command << ": " << error;
  return std::string(body);
}

/// ERR message; fails the test on an OK envelope.
std::string err_message(Client& client, std::string_view command) {
  std::string_view body;
  std::string error;
  EXPECT_FALSE(parse_response(client.roundtrip(command), body, error)) << command;
  return error;
}

/// The exact bytes the offline `analyze --json` path writes for this
/// capture at the given worker count.
std::string offline_analyze_bytes(const std::string& capture, std::size_t workers) {
  const auto analysis = core::analyze_capture(
      capture, testing::server_telescope(),
      enrich::InternetRegistry::synthetic_default(), workers, {});
  std::string expected;
  report::append_counters_json(expected, analysis.result);
  expected.push_back('\n');
  report::append_campaigns_jsonl(expected, analysis.result.campaigns);
  return expected;
}

TEST(Daemon, PingAndStatusOnIdleDaemon) {
  DaemonHarness harness;
  harness.start();
  auto client = harness.connect();
  EXPECT_EQ(ok_body(client, "PING"), "");
  const auto status = ok_body(client, "STATUS");
  EXPECT_NE(status.find("\"state\":\"idle\""), std::string::npos) << status;
  EXPECT_NE(status.find("\"connections\":1"), std::string::npos) << status;
}

TEST(Daemon, QueryBeforeLoadIsAnError) {
  DaemonHarness harness;
  harness.start();
  auto client = harness.connect();
  EXPECT_NE(err_message(client, "QUERY counters").find("no capture loaded"),
            std::string::npos);
}

TEST(Daemon, LoadThenQueryAnalyzeMatchesOfflineBytes) {
  DaemonConfig config;
  config.analysis_workers = 3;
  DaemonHarness harness(std::move(config));
  harness.start();
  const auto capture = harness.capture();
  auto client = harness.connect();

  const auto summary = ok_body(client, "LOAD " + capture);
  EXPECT_NE(summary.find("\"campaigns\":"), std::string::npos) << summary;

  const auto status = ok_body(client, "STATUS");
  EXPECT_NE(status.find("\"state\":\"ready\""), std::string::npos) << status;
  EXPECT_NE(status.find(capture), std::string::npos) << status;

  // The pinned guarantee: same capture, same worker count -> the daemon
  // returns byte-for-byte what the offline analyze emission writes.
  EXPECT_EQ(ok_body(client, "QUERY analyze"), offline_analyze_bytes(capture, 3));
}

TEST(Daemon, PreloadServesQueriesImmediately) {
  DaemonHarness harness;
  const auto capture = harness.capture();
  harness.daemon().preload(capture);
  harness.start();
  auto client = harness.connect();
  EXPECT_EQ(ok_body(client, "QUERY analyze"), offline_analyze_bytes(capture, 2));
  const auto status = ok_body(client, "STATUS");
  EXPECT_NE(status.find("\"loads\":1"), std::string::npos) << status;
}

TEST(Daemon, LoadOfMissingCaptureReportsErrorAndStaysUp) {
  DaemonHarness harness;
  harness.start();
  auto client = harness.connect();
  EXPECT_NE(err_message(client, "LOAD /nonexistent/window.pcap").find("load failed"),
            std::string::npos);
  EXPECT_EQ(ok_body(client, "PING"), "");  // daemon survived the throw
}

TEST(Daemon, PipelinedMixedRequestsComeBackInOrder) {
  DaemonHarness harness;
  harness.daemon().preload(harness.capture());
  harness.start();
  auto client = harness.connect();
  // Pooled (QUERY) and inline (STATUS/PING) responses interleave; the
  // daemon must deliver strictly in request order.
  client.send_command("QUERY counters");
  client.send_command("STATUS");
  client.send_command("PING");
  client.send_command("QUERY counters");
  std::vector<std::string> responses;
  for (int i = 0; i < 4; ++i) responses.push_back(client.read_response());
  std::string_view body;
  std::string error;
  ASSERT_TRUE(parse_response(responses[0], body, error));
  EXPECT_EQ(body.substr(0, 15), "{\"scan_probes\":");
  ASSERT_TRUE(parse_response(responses[1], body, error));
  EXPECT_EQ(body.substr(0, 10), "{\"state\":\"");
  ASSERT_TRUE(parse_response(responses[2], body, error));
  EXPECT_EQ(body, "");
  EXPECT_EQ(responses[3], responses[0]);
}

TEST(Daemon, GarbageFrameGetsErrAndConnectionSurvives) {
  DaemonHarness harness;
  harness.start();
  auto client = harness.connect();
  const auto error = err_message(client, std::string_view("\x01\x02\xff junk", 9));
  EXPECT_NE(error.find("printable"), std::string::npos);
  EXPECT_EQ(ok_body(client, "PING"), "");  // same connection still open
}

TEST(Daemon, OversizedFrameAnswersErrThenCloses) {
  DaemonConfig config;
  config.max_frame_bytes = 512;
  DaemonHarness harness(std::move(config));
  harness.start();
  auto client = harness.connect();
  // A header advertising 1 MiB against the 512-byte cap poisons the
  // stream: one ERR response, then the daemon hangs up.
  const std::string huge_header("\x00\x00\x10\x00", 4);
  (void)::send(client.fd(), huge_header.data(), huge_header.size(), 0);
  std::string_view body;
  std::string error;
  EXPECT_FALSE(parse_response(client.read_response(), body, error));
  EXPECT_NE(error.find("byte limit"), std::string::npos);
  EXPECT_THROW((void)client.read_response(), std::runtime_error);
}

TEST(Daemon, IdleConnectionsAreSweptAfterTimeout) {
  DaemonConfig config;
  config.idle_timeout_ms = 150;
  DaemonHarness harness(std::move(config));
  harness.start();
  auto client = harness.connect();
  EXPECT_EQ(ok_body(client, "PING"), "");
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  // The sweep closed the socket; the next read observes the hangup.
  EXPECT_THROW((void)client.roundtrip("PING"), std::runtime_error);
}

TEST(Daemon, ShutdownCommandDrainsAndStopsServing) {
  DaemonHarness harness;
  harness.start();
  const auto socket_path = harness.daemon().unix_socket_path();
  {
    auto client = harness.connect();
    EXPECT_EQ(ok_body(client, "SHUTDOWN"), "");
  }
  harness.join();  // serve() returned on its own
  EXPECT_THROW((void)Client::connect_unix(socket_path), std::runtime_error);
}

TEST(Daemon, SigtermTriggersGracefulDrain) {
  DaemonConfig config;
  config.install_signal_handlers = true;
  DaemonHarness harness(std::move(config));
  harness.start();
  auto client = harness.connect();
  EXPECT_EQ(ok_body(client, "PING"), "");
  (void)std::raise(SIGTERM);
  harness.join();  // the handler wakes the loop, which drains and exits
}

TEST(Daemon, PollFallbackServesIdenticalBytes) {
  DaemonConfig config;
  config.force_poll = true;
  DaemonHarness harness(std::move(config));
  const auto capture = harness.capture();
  harness.daemon().preload(capture);
  harness.start();
  auto client = harness.connect();
  EXPECT_EQ(ok_body(client, "QUERY analyze"), offline_analyze_bytes(capture, 2));
}

TEST(Daemon, TcpLoopbackRoundtrip) {
  DaemonConfig config;
  config.tcp = true;  // port 0: ephemeral
  DaemonHarness harness(std::move(config));
  harness.start();
  ASSERT_NE(harness.daemon().tcp_port(), 0);
  auto client = Client::connect_tcp("127.0.0.1", harness.daemon().tcp_port());
  EXPECT_EQ(ok_body(client, "PING"), "");
}

TEST(Daemon, ConcurrentClientsAllGetIdenticalBytes) {
  DaemonHarness harness;
  const auto capture = harness.capture();
  harness.daemon().preload(capture);
  harness.start();
  const auto expected = offline_analyze_bytes(capture, 2);
  const auto socket_path = harness.daemon().unix_socket_path();
  std::vector<std::thread> clients;
  std::vector<int> mismatches(6, 0);
  for (std::size_t t = 0; t < mismatches.size(); ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::connect_unix(socket_path);
      for (int i = 0; i < 10; ++i) {
        std::string_view body;
        std::string error;
        if (!parse_response(client.roundtrip("QUERY analyze"), body, error) ||
            body != expected) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  for (const auto count : mismatches) EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace synscan::server
