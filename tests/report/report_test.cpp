#include "report/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "report/series.h"

namespace synscan::report {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table table({"port", "packets", "share"});
  table.add_row({"80", "1000", "50.0%"});
  table.add_row({"443", "500", "25.0%"});
  const auto text = table.render();
  EXPECT_NE(text.find("port"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_NE(text.find("443"), std::string::npos);
  // Header, rule, two rows -> 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, PadsColumnsToWidestCell) {
  Table table({"a", "b"});
  table.add_row({"wide-cell-content", "1"});
  const auto text = table.render();
  std::istringstream stream(text);
  std::string header;
  std::getline(stream, header);
  EXPECT_GE(header.size(), std::string("wide-cell-content  b").size());
}

TEST(Table, ShortRowsPadAndLongRowsTruncate) {
  Table table({"a", "b"});
  table.add_row({"only-one"});
  table.add_row({"x", "y", "dropped"});
  const auto text = table.render();
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("only-one"), std::string::npos);
}

TEST(Table, FirstColumnLeftAlignedRestRight) {
  Table table({"name", "num"});
  table.add_row({"ab", "7"});
  const auto text = table.render();
  std::istringstream stream(text);
  std::string line;
  std::getline(stream, line);  // header
  std::getline(stream, line);  // rule
  std::getline(stream, line);  // row
  EXPECT_EQ(line.substr(0, 2), "ab");
  EXPECT_EQ(line.back(), '7');
}

TEST(Table, StreamOperator) {
  Table table({"x"});
  table.add_row({"1"});
  std::ostringstream out;
  out << table;
  EXPECT_FALSE(out.str().empty());
}

TEST(Formatting, Percent) {
  EXPECT_EQ(percent(0.5), "50.0%");
  EXPECT_EQ(percent(0.123456, 2), "12.35%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Formatting, HumanCount) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(95), "95.0");
  EXPECT_EQ(human_count(1500), "1.5 K");
  EXPECT_EQ(human_count(11e6), "11.0 M");
  EXPECT_EQ(human_count(45e9), "45.0 B");
  EXPECT_EQ(human_count(345e6), "345 M");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Series, PrintCdfEmitsMonotonePoints) {
  std::ostringstream out;
  print_cdf(out, "test-cdf", stats::Ecdf({1.0, 2.0, 2.0, 5.0}));
  const auto text = out.str();
  EXPECT_NE(text.find("test-cdf"), std::string::npos);
  EXPECT_NE(text.find("n=4"), std::string::npos);
  EXPECT_NE(text.find("1.0000"), std::string::npos);  // final F value
}

TEST(Series, PrintCdfHandlesEmpty) {
  std::ostringstream out;
  print_cdf(out, "empty", stats::Ecdf{});
  EXPECT_NE(out.str().find("(empty)"), std::string::npos);
}

TEST(Series, CdfSummaryTable) {
  std::vector<stats::NamedEcdf> series;
  series.push_back({"fast", stats::Ecdf({100.0, 200.0, 300.0})});
  series.push_back({"empty", stats::Ecdf{}});
  std::ostringstream out;
  print_cdf_summary(out, "speeds", series);
  const auto text = out.str();
  EXPECT_NE(text.find("fast"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("200.00"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);  // empty series placeholder
}

TEST(Series, CsvSeries) {
  std::ostringstream out;
  const double xs[] = {1.0, 2.0};
  const double ys[] = {10.0, 20.0};
  print_csv_series(out, "s", xs, ys);
  EXPECT_EQ(out.str(), "s,1,10\ns,2,20\n");
}

}  // namespace
}  // namespace synscan::report
