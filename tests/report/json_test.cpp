#include "report/json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace synscan::report {
namespace {

core::Campaign sample_campaign() {
  core::Campaign campaign;
  campaign.id = 7;
  campaign.source = net::Ipv4Address::from_octets(1, 2, 3, 4);
  campaign.tool = fingerprint::Tool::kMasscan;
  campaign.first_seen_us = 1000;
  campaign.last_seen_us = 61'000'000;
  campaign.packets = 500;
  campaign.distinct_destinations = 450;
  campaign.port_packets[443] = 300;
  campaign.port_packets[80] = 200;
  campaign.extrapolated_pps = 12345.5;
  campaign.coverage_fraction = 0.0123;
  return campaign;
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(CampaignJson, ContainsAllFieldsSorted) {
  std::ostringstream out;
  write_campaign_json(out, sample_campaign());
  const auto text = out.str();
  EXPECT_NE(text.find("\"id\":7"), std::string::npos);
  EXPECT_NE(text.find("\"source\":\"1.2.3.4\""), std::string::npos);
  EXPECT_NE(text.find("\"tool\":\"masscan\""), std::string::npos);
  EXPECT_NE(text.find("\"packets\":500"), std::string::npos);
  EXPECT_NE(text.find("\"destinations\":450"), std::string::npos);
  EXPECT_NE(text.find("\"ports\":[80,443]"), std::string::npos);  // ascending
  EXPECT_NE(text.find("\"distinct_ports\":2"), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  EXPECT_EQ(text.find('\n'), std::string::npos);  // single line
}

TEST(CampaignJson, PortListCapRespected) {
  auto campaign = sample_campaign();
  campaign.port_packets.clear();
  for (std::uint16_t port = 1; port <= 100; ++port) campaign.port_packets[port] = 1;
  std::ostringstream out;
  write_campaign_json(out, campaign, 10);
  const auto text = out.str();
  EXPECT_NE(text.find("\"ports\":[1,2,3,4,5,6,7,8,9,10]"), std::string::npos);
  EXPECT_NE(text.find("\"distinct_ports\":100"), std::string::npos);
}

TEST(CampaignJson, JsonlOneLinePerCampaign) {
  std::vector<core::Campaign> campaigns(3, sample_campaign());
  std::ostringstream out;
  write_campaigns_jsonl(out, campaigns);
  const auto text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(CountersJson, AllCountersPresent) {
  core::PipelineResult result;
  result.sensor.scan_probes = 10;
  result.sensor.backscatter = 2;
  result.tracker.subthreshold_flows = 5;
  std::ostringstream out;
  write_counters_json(out, result);
  const auto text = out.str();
  EXPECT_NE(text.find("\"scan_probes\":10"), std::string::npos);
  EXPECT_NE(text.find("\"backscatter\":2"), std::string::npos);
  EXPECT_NE(text.find("\"subthreshold_flows\":5"), std::string::npos);
  EXPECT_NE(text.find("\"campaigns\":0"), std::string::npos);
}

// The daemon serves `append_*` strings while the CLI writes through the
// `write_*` stream wrappers; QUERY-vs-offline byte identity rests on the
// two layers emitting the same bytes.
TEST(JsonLayers, StreamAndStringEmissionAreByteIdentical) {
  const auto campaign = sample_campaign();
  std::string appended;
  append_campaign_json(appended, campaign);
  std::ostringstream streamed;
  write_campaign_json(streamed, campaign);
  EXPECT_EQ(streamed.str(), appended);

  core::PipelineResult result;
  result.sensor.scan_probes = 987654321;
  result.tracker.subthreshold_flows = 42;
  std::string counters;
  append_counters_json(counters, result);
  std::ostringstream counters_stream;
  write_counters_json(counters_stream, result);
  EXPECT_EQ(counters_stream.str(), counters);
}

TEST(JsonLayers, LargeJsonlExportMatchesAcrossChunkedFlushes) {
  // Enough campaigns that the streaming side flushes its row buffer many
  // times mid-export; the concatenation must still match the one-shot
  // string build.
  std::vector<core::Campaign> campaigns(2000, sample_campaign());
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    campaigns[i].id = i;
    campaigns[i].packets = 100 + i;
    campaigns[i].port_packets[static_cast<std::uint16_t>(1 + i % 4000)] = 1;
  }
  std::string appended;
  append_campaigns_jsonl(appended, campaigns);
  std::ostringstream streamed;
  write_campaigns_jsonl(streamed, campaigns);
  EXPECT_GT(appended.size(), 64u * 1024u);  // exercises maybe_flush
  EXPECT_EQ(streamed.str(), appended);
}

}  // namespace
}  // namespace synscan::report
