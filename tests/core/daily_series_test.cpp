#include "core/daily_series.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.h"

namespace synscan::core {
namespace {

using synscan::testing::ProbeBuilder;

constexpr net::TimeUs kDay = net::kMicrosPerDay;

TEST(DailyPortSeries, BucketsByDayAndPort) {
  DailyPortSeries series(0);
  series.on_probe(ProbeBuilder().port(80).at(1));
  series.on_probe(ProbeBuilder().port(80).at(kDay - 1));
  series.on_probe(ProbeBuilder().port(80).at(kDay + 1));
  series.on_probe(ProbeBuilder().port(443).at(kDay + 1));

  const auto port80 = series.series(80);
  ASSERT_EQ(port80.size(), 2u);
  EXPECT_EQ(port80[0], 2u);
  EXPECT_EQ(port80[1], 1u);

  const auto totals = series.totals();
  EXPECT_EQ(totals[0], 2u);
  EXPECT_EQ(totals[1], 2u);
}

TEST(DailyPortSeries, UnseenPortIsAllZero) {
  DailyPortSeries series(0);
  series.on_probe(ProbeBuilder().port(80).at(3 * kDay));
  const auto quiet = series.series(9999);
  ASSERT_EQ(quiet.size(), 4u);
  for (const auto count : quiet) EXPECT_EQ(count, 0u);
}

TEST(DailyPortSeries, OriginOffsetsDays) {
  DailyPortSeries series(10 * kDay);
  series.on_probe(ProbeBuilder().port(80).at(10 * kDay + 5));
  series.on_probe(ProbeBuilder().port(80).at(12 * kDay + 5));
  const auto data = series.series(80);
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[2], 1u);
}

// Builds a series with a flat baseline, a spike at `disclosure_day`, and
// an exponential-ish decay back to baseline.
DailyPortSeries surge_series(std::size_t disclosure_day, double peak,
                             double decay_per_day, std::size_t days) {
  DailyPortSeries series(0);
  for (std::size_t day = 0; day < days; ++day) {
    double level = 10.0;
    if (day >= disclosure_day) {
      const auto after = static_cast<double>(day - disclosure_day);
      level += peak * std::pow(decay_per_day, after);
    }
    for (int i = 0; i < static_cast<int>(level); ++i) {
      series.on_probe(ProbeBuilder().port(7001).at(
          static_cast<net::TimeUs>(day) * kDay + i));
    }
  }
  return series;
}

TEST(DisclosureDecay, DetectsPeakAndRecovery) {
  const auto series = surge_series(10, 500.0, 0.5, 40);
  const auto decay = disclosure_decay(series, 7001, 10);
  EXPECT_EQ(decay.peak_day_after, 0u);
  EXPECT_NEAR(decay.peak_multiplier, 51.0, 2.0);  // (10+500)/10
  // 500 * 0.5^k <= 10 at k >= 5.6 -> recovery within ~6-7 days.
  EXPECT_GE(decay.days_to_recover, 5u);
  EXPECT_LE(decay.days_to_recover, 8u);
}

TEST(DisclosureDecay, BackToNormalKsIsInsignificant) {
  const auto series = surge_series(10, 500.0, 0.4, 60);
  const auto decay = disclosure_decay(series, 7001, 10);
  // The last week of the series sits at baseline again: the KS test must
  // NOT reject (high p-value).
  EXPECT_GT(decay.back_to_normal.p_value, 0.05);
}

TEST(DisclosureDecay, SustainedInterestNeverRecovers) {
  // Activity jumps and stays up (the pre-2014 behavior reported by
  // Durumeric et al.).
  DailyPortSeries series(0);
  for (std::size_t day = 0; day < 30; ++day) {
    const int level = day >= 10 ? 300 : 10;
    for (int i = 0; i < level; ++i) {
      series.on_probe(ProbeBuilder().port(7001).at(
          static_cast<net::TimeUs>(day) * kDay + i));
    }
  }
  const auto decay = disclosure_decay(series, 7001, 10);
  EXPECT_EQ(decay.days_to_recover, SIZE_MAX);
  // And the tail clearly differs from baseline.
  EXPECT_LT(decay.back_to_normal.p_value, 0.05);
}

TEST(DisclosureDecay, QuietPortBeforeDisclosureUsesFloorBaseline) {
  DailyPortSeries series(0);
  // No traffic at all before day 10; spike of 200/day after.
  for (std::size_t day = 10; day < 15; ++day) {
    for (int i = 0; i < 200; ++i) {
      series.on_probe(ProbeBuilder().port(2375).at(
          static_cast<net::TimeUs>(day) * kDay + i));
    }
  }
  const auto decay = disclosure_decay(series, 2375, 10);
  EXPECT_NEAR(decay.peak_multiplier, 200.0, 1e-9);
}

TEST(DisclosureDecay, OutOfRangeDayIsEmptyResult) {
  DailyPortSeries series(0);
  series.on_probe(ProbeBuilder().port(80).at(0));
  const auto decay = disclosure_decay(series, 80, 99);
  EXPECT_TRUE(decay.multiplier.empty());
}

}  // namespace
}  // namespace synscan::core
