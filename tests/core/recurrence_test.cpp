#include "core/analysis_recurrence.h"

#include <gtest/gtest.h>

#include "core/analysis_types.h"
#include "enrich/known_scanners.h"
#include "test_support.h"

namespace synscan::core {
namespace {

constexpr net::TimeUs kDay = net::kMicrosPerDay;

Campaign campaign_at(net::Ipv4Address source, net::TimeUs start,
                     net::TimeUs duration = net::kMicrosPerHour) {
  Campaign campaign;
  campaign.source = source;
  campaign.first_seen_us = start;
  campaign.last_seen_us = start + duration;
  campaign.packets = 200;
  campaign.port_packets[80] = 200;
  return campaign;
}

const enrich::InternetRegistry& registry() {
  return enrich::InternetRegistry::synthetic_default();
}

net::Ipv4Address residential_source(int i) {
  const auto pools = registry().records_of(enrich::ScannerType::kResidential);
  return pools[static_cast<std::size_t>(i) % pools.size()]->prefix.at(
      10 + static_cast<std::uint64_t>(i));
}

net::Ipv4Address institutional_source() {
  return enrich::find_known_scanner("Censys")->prefix.at(5);
}

TEST(Recurrence, OneShotSourcesAreNotRecurring) {
  std::vector<Campaign> campaigns;
  for (int i = 0; i < 10; ++i) {
    campaigns.push_back(campaign_at(residential_source(i), i * kDay));
  }
  const auto results = recurrence_by_type(campaigns, registry());
  const auto& residential =
      results[enrich::scanner_type_index(enrich::ScannerType::kResidential)];
  EXPECT_EQ(residential.sources, 10u);
  EXPECT_EQ(residential.recurring_sources, 0u);
  EXPECT_TRUE(residential.downtime_seconds.empty());
  EXPECT_DOUBLE_EQ(residential.campaigns_per_source.value_at_fraction(1.0), 1.0);
}

TEST(Recurrence, DailyInstitutionalScannerHasDailyMode) {
  std::vector<Campaign> campaigns;
  const auto source = institutional_source();
  for (int day = 0; day < 20; ++day) {
    campaigns.push_back(campaign_at(source, day * kDay, net::kMicrosPerHour));
  }
  const auto results = recurrence_by_type(campaigns, registry());
  const auto& institutional =
      results[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)];
  EXPECT_EQ(institutional.sources, 1u);
  EXPECT_EQ(institutional.recurring_sources, 1u);
  EXPECT_DOUBLE_EQ(institutional.daily_mode_fraction, 1.0);
  // Downtime between campaigns is ~23 hours.
  EXPECT_NEAR(institutional.downtime_seconds.value_at_fraction(0.5), 23.0 * 3600.0,
              3600.0);
}

TEST(Recurrence, Over100CampaignsFraction) {
  std::vector<Campaign> campaigns;
  const auto source = institutional_source();
  for (int i = 0; i < 150; ++i) {
    campaigns.push_back(campaign_at(source, i * kDay / 4));
  }
  campaigns.push_back(campaign_at(residential_source(1), 0));
  const auto results = recurrence_by_type(campaigns, registry());
  const auto& institutional =
      results[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)];
  EXPECT_DOUBLE_EQ(institutional.over_100_campaigns_fraction, 1.0);
  const auto& residential =
      results[enrich::scanner_type_index(enrich::ScannerType::kResidential)];
  EXPECT_DOUBLE_EQ(residential.over_100_campaigns_fraction, 0.0);
}

TEST(Recurrence, WeeklyScannerIsRecurrentButNotDailyMode) {
  std::vector<Campaign> campaigns;
  const auto source = residential_source(42);
  for (int week = 0; week < 5; ++week) {
    campaigns.push_back(campaign_at(source, week * 7 * kDay));
  }
  const auto results = recurrence_by_type(campaigns, registry());
  const auto& residential =
      results[enrich::scanner_type_index(enrich::ScannerType::kResidential)];
  EXPECT_EQ(residential.recurring_sources, 1u);
  EXPECT_DOUBLE_EQ(residential.daily_mode_fraction, 0.0);
}

TEST(Recurrence, UnsortedInputIsHandled) {
  std::vector<Campaign> campaigns;
  const auto source = residential_source(7);
  campaigns.push_back(campaign_at(source, 5 * kDay));
  campaigns.push_back(campaign_at(source, 1 * kDay));
  campaigns.push_back(campaign_at(source, 3 * kDay));
  const auto results = recurrence_by_type(campaigns, registry());
  const auto& residential =
      results[enrich::scanner_type_index(enrich::ScannerType::kResidential)];
  ASSERT_EQ(residential.downtime_seconds.size(), 2u);
  // Gaps are ~2 days each minus the 1h campaign duration; all positive.
  for (const auto gap : residential.downtime_seconds.sorted()) {
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, 3.0 * 24 * 3600);
  }
}

TEST(Recurrence, ResultsCoverAllTypes) {
  const auto results = recurrence_by_type({}, registry());
  EXPECT_EQ(results.size(), enrich::kScannerTypeCount);
  for (const auto& result : results) {
    EXPECT_EQ(result.sources, 0u);
    EXPECT_EQ(result.recurring_sources, 0u);
  }
}

TEST(TypeSpeedCoverage, AveragesPerSourceThenAggregates) {
  std::vector<Campaign> campaigns;
  // One institutional source with two campaigns at 10k and 20k pps.
  auto a = campaign_at(institutional_source(), 0);
  a.extrapolated_pps = 10000;
  a.coverage_fraction = 0.5;
  auto b = campaign_at(institutional_source(), kDay);
  b.extrapolated_pps = 20000;
  b.coverage_fraction = 1.0;
  campaigns.push_back(a);
  campaigns.push_back(b);
  // One slow residential source.
  auto c = campaign_at(residential_source(3), 0);
  c.extrapolated_pps = 200;
  c.coverage_fraction = 0.001;
  campaigns.push_back(c);

  const auto rows = type_speed_coverage(campaigns, registry());
  const auto& institutional =
      rows[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)];
  EXPECT_DOUBLE_EQ(institutional.mean_speed_pps, 15000.0);
  EXPECT_DOUBLE_EQ(institutional.mean_coverage, 0.75);
  EXPECT_DOUBLE_EQ(institutional.fraction_over_1000pps, 1.0);
  const auto& residential =
      rows[enrich::scanner_type_index(enrich::ScannerType::kResidential)];
  EXPECT_DOUBLE_EQ(residential.mean_speed_pps, 200.0);
  EXPECT_DOUBLE_EQ(residential.fraction_over_1000pps, 0.0);
}

TEST(OrgPortCoverage, UnionsPortsAcrossCampaigns) {
  std::vector<Campaign> campaigns;
  auto a = campaign_at(institutional_source(), 0);
  a.port_packets.clear();
  a.port_packets[80] = 10;
  a.port_packets[443] = 10;
  a.packets = 20;
  auto b = campaign_at(institutional_source(), kDay);
  b.port_packets.clear();
  b.port_packets[443] = 5;
  b.port_packets[22] = 5;
  b.packets = 10;
  campaigns.push_back(a);
  campaigns.push_back(b);
  // Non-institutional traffic is excluded.
  campaigns.push_back(campaign_at(residential_source(9), 0));

  const auto coverage = org_port_coverage(campaigns, registry());
  ASSERT_EQ(coverage.size(), 1u);
  EXPECT_EQ(coverage[0].organization, "Censys");
  EXPECT_EQ(coverage[0].distinct_ports, 3u);
  EXPECT_EQ(coverage[0].campaigns, 2u);
  EXPECT_EQ(coverage[0].packets, 30u);
}

TEST(TypeTally, Table2StyleShares) {
  const auto& reg = registry();
  TypeTally tally(reg);
  const auto inst = institutional_source();
  const auto res = residential_source(1);
  for (int i = 0; i < 70; ++i) {
    tally.on_probe(synscan::testing::ProbeBuilder().from(inst).port(443));
  }
  for (int i = 0; i < 30; ++i) {
    tally.on_probe(synscan::testing::ProbeBuilder().from(res).port(80));
  }
  EXPECT_EQ(tally.packets(enrich::ScannerType::kInstitutional), 70u);
  EXPECT_EQ(tally.sources(enrich::ScannerType::kInstitutional), 1u);
  EXPECT_EQ(tally.total_sources(), 2u);

  std::vector<Campaign> campaigns;
  campaigns.push_back(campaign_at(inst, 0));
  campaigns.push_back(campaign_at(res, 0));
  campaigns.push_back(campaign_at(res, kDay));
  const auto table = type_share_table(tally, campaigns, reg);
  const auto& inst_row =
      table[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)];
  EXPECT_DOUBLE_EQ(inst_row.source_share, 0.5);
  EXPECT_NEAR(inst_row.scan_share, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(inst_row.packet_share, 0.7);

  // Fig. 5-style mix: port 443 is 100% institutional here.
  const auto mix = tally.port_type_mix(443);
  EXPECT_DOUBLE_EQ(mix[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)],
                   1.0);
  const auto top = tally.top_ports(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 443);
}

}  // namespace
}  // namespace synscan::core
