// Unit-level pipeline coverage (the integration suite covers the
// generator-driven paths; these pin the direct API behaviors).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace synscan::core {
namespace {

const telescope::Telescope& tiny_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("203.0.113.0/24"), 1000}}, {});
  return telescope;
}

TEST(Pipeline, FeedDecodedSkipsReparsing) {
  Pipeline pipeline(tiny_telescope());
  net::TcpFrameSpec spec;
  spec.src_ip = net::Ipv4Address::from_octets(9, 9, 9, 9);
  spec.dst_ip = net::Ipv4Address::from_octets(203, 0, 113, 7);
  spec.dst_port = 80;
  const auto bytes = net::build_tcp_frame(spec);
  const auto decoded = net::decode_frame(bytes);
  ASSERT_TRUE(decoded.has_value());

  pipeline.feed_decoded(42, *decoded);
  EXPECT_EQ(pipeline.sensor_counters().scan_probes, 1u);
  const auto result = pipeline.finish();
  EXPECT_EQ(result.tracker.probes, 1u);
}

TEST(Pipeline, FinishIsTerminalAndMovesCampaigns) {
  Pipeline pipeline(tiny_telescope());
  for (int i = 0; i < 150; ++i) {
    pipeline.feed_probe(testing::ProbeBuilder()
                            .from(net::Ipv4Address::from_octets(9, 9, 9, 9))
                            .to(net::Ipv4Address(0xcb007100u + static_cast<std::uint32_t>(i)))
                            .at(i * net::kMicrosPerSecond));
  }
  const auto first = pipeline.finish();
  EXPECT_EQ(first.campaigns.size(), 1u);
  // A second finish on the drained pipeline yields nothing new.
  const auto second = pipeline.finish();
  EXPECT_TRUE(second.campaigns.empty());
}

TEST(Pipeline, ObserversRunBeforeTracker) {
  // The observer must see probes even for flows that later qualify; the
  // simplest detectable property: observer count equals tracker count.
  struct Counter final : ProbeObserver {
    void on_probe(const telescope::ScanProbe&) override { ++count; }
    std::uint64_t count = 0;
  } counter;

  Pipeline pipeline(tiny_telescope());
  pipeline.add_observer(counter);
  for (int i = 0; i < 25; ++i) {
    pipeline.feed_probe(testing::ProbeBuilder().at(i));
  }
  const auto result = pipeline.finish();
  EXPECT_EQ(counter.count, 25u);
  EXPECT_EQ(result.tracker.probes, 25u);
}

TEST(Pipeline, MultipleObserversAllInvoked) {
  struct Counter final : ProbeObserver {
    void on_probe(const telescope::ScanProbe&) override { ++count; }
    std::uint64_t count = 0;
  } a, b, c;

  Pipeline pipeline(tiny_telescope());
  pipeline.add_observer(a);
  pipeline.add_observer(b);
  pipeline.add_observer(c);
  pipeline.feed_probe(testing::ProbeBuilder().at(1));
  (void)pipeline.finish();
  EXPECT_EQ(a.count, 1u);
  EXPECT_EQ(b.count, 1u);
  EXPECT_EQ(c.count, 1u);
}

TEST(Pipeline, NonProbeFramesDoNotReachObservers) {
  struct Counter final : ProbeObserver {
    void on_probe(const telescope::ScanProbe&) override { ++count; }
    std::uint64_t count = 0;
  } counter;

  Pipeline pipeline(tiny_telescope());
  pipeline.add_observer(counter);
  // A RST (backscatter) frame to a monitored address.
  const auto bytes = testing::syn_frame(net::Ipv4Address::from_octets(9, 9, 9, 9),
                                        net::Ipv4Address::from_octets(203, 0, 113, 7),
                                        80, net::flag_bit(net::TcpFlag::kRst));
  pipeline.feed_frame({5, bytes});
  EXPECT_EQ(counter.count, 0u);
  EXPECT_EQ(pipeline.sensor_counters().backscatter, 1u);
}

}  // namespace
}  // namespace synscan::core
