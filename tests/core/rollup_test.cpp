// Unit tests for the mergeable-rollup layer (core/rollup.h): aggregate
// merge() contracts, fingerprint-evidence splicing, and the
// RollupMerger boundary-join semantics. The whole-subsystem invariant —
// merged shards byte-identical to whole-capture analysis — is pinned by
// tests/integration/rollup_differential_test.cpp.
#include "core/rollup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/daily_series.h"
#include "core/port_tally.h"
#include "core/volatility.h"
#include "fingerprint/classifier.h"
#include "net/packet.h"
#include "pcap/pcap.h"
#include "test_support.h"

namespace synscan::core {
namespace {

namespace fs = std::filesystem;

using synscan::testing::ProbeBuilder;

net::Ipv4Address src(std::uint32_t i) { return net::Ipv4Address(0x05000000u + i); }
net::Ipv4Address dst(std::uint32_t i) { return net::Ipv4Address(0xc6330000u + i); }

/// A deterministic probe stream that touches several sources, ports and
/// destinations; `n` controls the length.
std::vector<telescope::ScanProbe> sample_probes(std::size_t n) {
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    probes.push_back(ProbeBuilder()
                         .at(static_cast<net::TimeUs>(1'000'000 + i * 40))
                         .from(src(static_cast<std::uint32_t>(i % 7)))
                         .to(dst(static_cast<std::uint32_t>(i % 31)))
                         .port(static_cast<std::uint16_t>(i % 3 == 0 ? 443 : 80)));
  }
  return probes;
}

// ---- tally merges ---------------------------------------------------

TEST(RollupMerge, PortTallyMergeEqualsWhole) {
  const auto probes = sample_probes(200);
  PortTally whole;
  PortTally left;
  PortTally right;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    whole.on_probe(probes[i]);
    (i < 90 ? left : right).on_probe(probes[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.total_packets(), whole.total_packets());
  EXPECT_EQ(left.total_sources(), whole.total_sources());
  EXPECT_EQ(left.packets_on_port(80), whole.packets_on_port(80));
  EXPECT_EQ(left.packets_on_port(443), whole.packets_on_port(443));
  EXPECT_EQ(left.sources_on_port(80), whole.sources_on_port(80));
  auto merged_sample = left.ports_per_source_sample();
  auto whole_sample = whole.ports_per_source_sample();
  std::sort(merged_sample.begin(), merged_sample.end());
  std::sort(whole_sample.begin(), whole_sample.end());
  EXPECT_EQ(merged_sample, whole_sample);
}

TEST(RollupMerge, PortTallyMergeWithEmptyIsIdentity) {
  const auto probes = sample_probes(50);
  PortTally tally;
  for (const auto& probe : probes) tally.on_probe(probe);
  const auto packets = tally.total_packets();
  const auto sources = tally.total_sources();

  tally.merge(PortTally{});  // empty right-hand side
  EXPECT_EQ(tally.total_packets(), packets);
  EXPECT_EQ(tally.total_sources(), sources);

  PortTally fresh;
  fresh.merge(tally);  // empty left-hand side
  EXPECT_EQ(fresh.total_packets(), packets);
  EXPECT_EQ(fresh.total_sources(), sources);
}

TEST(RollupMerge, TypeTallyMergeEqualsWhole) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto probes = sample_probes(200);
  TypeTally whole(registry);
  TypeTally left(registry);
  TypeTally right(registry);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    whole.on_probe(probes[i]);
    (i < 70 ? left : right).on_probe(probes[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.total_packets(), whole.total_packets());
  EXPECT_EQ(left.total_sources(), whole.total_sources());
  for (std::size_t t = 0; t < enrich::kScannerTypeCount; ++t) {
    const auto type = static_cast<enrich::ScannerType>(t);
    EXPECT_EQ(left.packets(type), whole.packets(type));
    EXPECT_EQ(left.sources(type), whole.sources(type));
  }
  EXPECT_EQ(left.top_ports(5), whole.top_ports(5));
}

TEST(RollupMerge, TypeTallyRegistryMismatchThrows) {
  const enrich::InternetRegistry other({});
  TypeTally a(enrich::InternetRegistry::synthetic_default());
  const TypeTally b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RollupMerge, GeoTallyMergeEqualsWhole) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto probes = sample_probes(200);
  GeoTally whole(registry);
  GeoTally left(registry);
  GeoTally right(registry);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    whole.on_probe(probes[i]);
    (i < 130 ? left : right).on_probe(probes[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.total_packets(), whole.total_packets());
  const auto merged_top = left.top_countries(5);
  const auto whole_top = whole.top_countries(5);
  ASSERT_EQ(merged_top.size(), whole_top.size());
  for (std::size_t i = 0; i < whole_top.size(); ++i) {
    EXPECT_EQ(merged_top[i].country, whole_top[i].country);
    EXPECT_EQ(merged_top[i].packets, whole_top[i].packets);
  }
}

TEST(RollupMerge, GeoTallyRegistryMismatchThrows) {
  const enrich::InternetRegistry other({});
  GeoTally a(enrich::InternetRegistry::synthetic_default());
  const GeoTally b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RollupMerge, VolatilityMergeEqualsWhole) {
  const net::TimeUs origin = 1'000'000;
  VolatilityTracker whole(origin, net::kMicrosPerDay);
  VolatilityTracker left(origin, net::kMicrosPerDay);
  VolatilityTracker right(origin, net::kMicrosPerDay);
  for (int i = 0; i < 300; ++i) {
    const auto probe = ProbeBuilder()
                           .at(origin + static_cast<net::TimeUs>(i) *
                                            (net::kMicrosPerDay / 50))
                           .from(src(static_cast<std::uint32_t>(i % 5) << 16))
                           .to(dst(static_cast<std::uint32_t>(i)));
    whole.on_probe(probe);
    (i < 140 ? left : right).on_probe(probe);
  }
  left.merge(right);
  const auto merged = left.result();
  const auto expected = whole.result();
  EXPECT_EQ(merged.netblocks, expected.netblocks);
  EXPECT_EQ(merged.weeks, expected.weeks);
  ASSERT_EQ(merged.packet_change.size(), expected.packet_change.size());
  const auto merged_sorted = merged.packet_change.sorted();
  const auto expected_sorted = expected.packet_change.sorted();
  for (std::size_t i = 0; i < expected_sorted.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged_sorted[i], expected_sorted[i]);
  }
}

TEST(RollupMerge, VolatilityOriginMismatchThrows) {
  VolatilityTracker a(0);
  const VolatilityTracker b(net::kMicrosPerDay);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  VolatilityTracker c(0, net::kMicrosPerDay);
  const VolatilityTracker d(0, net::kMicrosPerWeek);
  EXPECT_THROW(c.merge(d), std::invalid_argument);
}

TEST(RollupMerge, DailySeriesMergeEqualsWhole) {
  const net::TimeUs origin = 0;
  DailyPortSeries whole(origin);
  DailyPortSeries left(origin);
  DailyPortSeries right(origin);
  for (int i = 0; i < 240; ++i) {
    const auto probe = ProbeBuilder()
                           .at(static_cast<net::TimeUs>(i) * (net::kMicrosPerDay / 40))
                           .from(src(1))
                           .to(dst(static_cast<std::uint32_t>(i)))
                           .port(static_cast<std::uint16_t>(i % 2 == 0 ? 80 : 22));
    whole.on_probe(probe);
    (i % 3 == 0 ? left : right).on_probe(probe);
  }
  left.merge(right);
  EXPECT_EQ(left.days(), whole.days());
  EXPECT_EQ(left.series(80), whole.series(80));
  EXPECT_EQ(left.series(22), whole.series(22));
  EXPECT_EQ(left.totals(), whole.totals());
}

TEST(RollupMerge, DailySeriesOriginMismatchThrows) {
  DailyPortSeries a(0);
  const DailyPortSeries b(net::kMicrosPerDay);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---- fingerprint evidence splicing ----------------------------------

std::vector<telescope::ScanProbe> zmap_like_run(std::size_t n) {
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto builder = ProbeBuilder()
                       .at(static_cast<net::TimeUs>(1'000'000 + i * 100))
                       .from(src(9))
                       .to(dst(static_cast<std::uint32_t>(i)))
                       .ipid(54321);  // the ZMap single-packet fingerprint
    probes.push_back(builder);
  }
  return probes;
}

TEST(RollupMerge, EvidenceAppendMatchesContinuousObservation) {
  const auto probes = zmap_like_run(24);
  const fingerprint::ClassifierConfig config;

  fingerprint::ToolEvidence continuous(config);
  for (const auto& probe : probes) continuous.observe(probe);

  for (const std::size_t split : {std::size_t{1}, std::size_t{11}, probes.size() - 1}) {
    fingerprint::ToolEvidence head(config);
    fingerprint::ToolEvidence tail(config);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      (i < split ? head : tail).observe(probes[i]);
    }
    head.append(tail);
    EXPECT_EQ(head.probes(), continuous.probes()) << "split " << split;
    EXPECT_EQ(head.verdict(), continuous.verdict()) << "split " << split;
    for (const auto tool : fingerprint::kAllTools) {
      EXPECT_EQ(head.matches(tool), continuous.matches(tool))
          << "split " << split << " tool " << to_string(tool);
    }
  }
}

TEST(RollupMerge, EvidenceStateRoundTripContinuesExactly) {
  const auto probes = zmap_like_run(16);
  const fingerprint::ClassifierConfig config;

  fingerprint::ToolEvidence continuous(config);
  fingerprint::ToolEvidence original(config);
  for (std::size_t i = 0; i < 10; ++i) {
    continuous.observe(probes[i]);
    original.observe(probes[i]);
  }
  // Freeze, thaw (the `.spr` path), then keep observing on the thawed copy.
  auto thawed = fingerprint::ToolEvidence::from_state(config, original.state());
  for (std::size_t i = 10; i < probes.size(); ++i) {
    continuous.observe(probes[i]);
    thawed.observe(probes[i]);
  }
  EXPECT_EQ(thawed.probes(), continuous.probes());
  EXPECT_EQ(thawed.verdict(), continuous.verdict());
  for (const auto tool : fingerprint::kAllTools) {
    EXPECT_EQ(thawed.matches(tool), continuous.matches(tool));
  }
}

TEST(RollupMerge, EmptyEvidenceStateRoundTrip) {
  const fingerprint::ClassifierConfig config;
  const fingerprint::ToolEvidence empty(config);
  const auto thawed = fingerprint::ToolEvidence::from_state(config, empty.state());
  EXPECT_EQ(thawed.probes(), 0u);
  EXPECT_EQ(thawed.verdict(), empty.verdict());
}

// ---- RollupMerger contracts -----------------------------------------

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

TEST(RollupMerger, AddAfterFinishThrows) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  RollupMerger merger(test_telescope(), registry, TrackerConfig{});
  (void)merger.finish();
  EXPECT_THROW(merger.add(CaptureRollup(registry)), std::logic_error);
}

TEST(RollupMerger, EmptyMergeIsEmptyAnalysis) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  RollupMerger merger(test_telescope(), registry, TrackerConfig{});
  const auto analysis = merger.finish();
  EXPECT_EQ(analysis.frames, 0u);
  EXPECT_FALSE(analysis.from_cache);
  EXPECT_TRUE(analysis.result.campaigns.empty());
  EXPECT_EQ(analysis.result.sensor.scan_probes, 0u);
}

// ---- boundary joins through analyze_shard ---------------------------

/// Writes `count` SYN probes from `source`, one per distinct
/// destination, starting at `start` with `step` between packets.
void write_burst(pcap::Writer& writer, net::Ipv4Address source, std::uint32_t dest_base,
                 std::uint32_t count, net::TimeUs start, net::TimeUs step) {
  net::RawFrame frame;
  for (std::uint32_t i = 0; i < count; ++i) {
    net::TcpFrameSpec tcp;
    tcp.src_ip = source;
    tcp.dst_ip = dst(dest_base + i);
    tcp.src_port = 44444;
    tcp.dst_port = 80;
    tcp.sequence = 1000 + i;
    frame.timestamp_us = start + static_cast<net::TimeUs>(i) * step;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
}

/// Unique temp dir per test so parallel ctest runs cannot collide.
struct ShardFixture {
  fs::path dir;
  fs::path first;
  fs::path second;

  explicit ShardFixture(const char* name) {
    dir = fs::temp_directory_path() / (std::string("synscan_rollup_unit_") + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    first = dir / "a.pcap";
    second = dir / "b.pcap";
  }
  ~ShardFixture() { fs::remove_all(dir); }
};

AnalyzedCapture merge_two(const fs::path& a, const fs::path& b) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  IngestOptions ingest;
  ingest.use_cache = false;
  const TrackerConfig config;
  RollupMerger merger(test_telescope(), registry, config);
  merger.add(analyze_shard(a, test_telescope(), registry, config, ingest));
  merger.add(analyze_shard(b, test_telescope(), registry, config, ingest));
  return merger.finish();
}

TEST(RollupMerger, FlowSpanningShardsJoinsIntoOneCampaign) {
  const ShardFixture fixture("join");
  {
    auto writer = pcap::Writer::create(fixture.first);
    write_burst(writer, src(1), 0, 80, 1'000'000, 10'000);
    writer.flush();
  }
  {
    // Continues 2s later — far inside the 1h expiry.
    auto writer = pcap::Writer::create(fixture.second);
    write_burst(writer, src(1), 80, 80, 3'000'000, 10'000);
    writer.flush();
  }
  const auto merged = merge_two(fixture.first, fixture.second);
  ASSERT_EQ(merged.result.campaigns.size(), 1u);
  EXPECT_EQ(merged.result.campaigns[0].source, src(1));
  EXPECT_EQ(merged.result.campaigns[0].packets, 160u);
  EXPECT_EQ(merged.result.campaigns[0].distinct_destinations, 160u);
  EXPECT_EQ(merged.result.campaigns[0].first_seen_us, 1'000'000);
}

TEST(RollupMerger, ExpiryGapAcrossShardsSplitsCampaigns) {
  const ShardFixture fixture("gap");
  {
    auto writer = pcap::Writer::create(fixture.first);
    write_burst(writer, src(1), 0, 120, 1'000'000, 10'000);
    writer.flush();
  }
  {
    // Resumes more than the 1h expiry after the first burst ended.
    auto writer = pcap::Writer::create(fixture.second);
    write_burst(writer, src(1), 200, 120, 2 * net::kMicrosPerHour, 10'000);
    writer.flush();
  }
  const auto merged = merge_two(fixture.first, fixture.second);
  ASSERT_EQ(merged.result.campaigns.size(), 2u);
  EXPECT_EQ(merged.result.campaigns[0].packets, 120u);
  EXPECT_EQ(merged.result.campaigns[1].packets, 120u);
  // The first flow was followed by same-source traffic after the gap, so
  // it counts as expired, like the whole-capture tracker would have it.
  EXPECT_EQ(merged.result.tracker.expired_flows, 1u);
}

}  // namespace
}  // namespace synscan::core
