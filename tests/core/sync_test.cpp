#include "core/sync.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace synscan::core {
namespace {

// Compile-time behavior (violations rejected under clang) is covered by
// the threadsafety_fixtures test; these check the wrappers actually
// lock, exclude and wake at runtime on every toolchain.

TEST(SyncTest, TryLockReflectsOwnership) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // std::mutex ownership is per-thread, so the contended probe must
  // come from another thread to be well-defined.
  std::thread prober([&mutex] { EXPECT_FALSE(mutex.try_lock()); });
  prober.join();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncTest, MutexLockExcludesConcurrentWriters) {
  class Tally {
   public:
    void bump() SYNSCAN_EXCLUDES(mutex_) {
      const MutexLock lock(mutex_);
      ++count_;
    }
    [[nodiscard]] int value() const SYNSCAN_EXCLUDES(mutex_) {
      const MutexLock lock(mutex_);
      return count_;
    }

   private:
    mutable Mutex mutex_;
    int count_ SYNSCAN_GUARDED_BY(mutex_) = 0;
  };

  Tally tally;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tally] {
      for (int i = 0; i < kIncrements; ++i) tally.bump();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tally.value(), kThreads * kIncrements);
}

TEST(SyncTest, CondVarWakesWaiter) {
  Mutex mutex;
  CondVar ready;
  bool go = false;
  bool observed = false;
  std::thread waiter([&] {
    UniqueLock lock(mutex);
    while (!go) ready.wait(lock);
    observed = true;
  });
  {
    const MutexLock lock(mutex);
    go = true;
  }
  ready.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(SyncTest, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar ready;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      UniqueLock lock(mutex);
      while (!go) ready.wait(lock);
      ++woken;
    });
  }
  {
    const MutexLock lock(mutex);
    go = true;
  }
  ready.notify_all();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(woken, kWaiters);
}

}  // namespace
}  // namespace synscan::core
