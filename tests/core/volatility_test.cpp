#include "core/volatility.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace synscan::core {
namespace {

using synscan::testing::ProbeBuilder;

constexpr net::TimeUs kWeek = net::kMicrosPerWeek;

net::Ipv4Address block_a(std::uint32_t host) {
  return net::Ipv4Address((10u << 24) | (1u << 16) | host);
}
net::Ipv4Address block_b(std::uint32_t host) {
  return net::Ipv4Address((10u << 24) | (2u << 16) | host);
}

TEST(VolatilityTracker, StableBlockHasFactorOne) {
  VolatilityTracker tracker(0);
  for (int week = 0; week < 4; ++week) {
    for (int i = 0; i < 10; ++i) {
      tracker.on_probe(ProbeBuilder().from(block_a(1)).at(week * kWeek + i));
    }
  }
  const auto result = tracker.result();
  EXPECT_EQ(result.netblocks, 1u);
  EXPECT_EQ(result.weeks, 4u);
  ASSERT_EQ(result.packet_change.size(), 3u);
  EXPECT_DOUBLE_EQ(result.packet_change.value_at_fraction(1.0), 1.0);
}

TEST(VolatilityTracker, DoublingTrafficGivesFactorTwo) {
  VolatilityTracker tracker(0);
  int count = 10;
  for (int week = 0; week < 3; ++week) {
    for (int i = 0; i < count; ++i) {
      tracker.on_probe(ProbeBuilder().from(block_a(1)).at(week * kWeek + i));
    }
    count *= 2;
  }
  const auto result = tracker.result();
  for (const auto factor : result.packet_change.sorted()) {
    EXPECT_DOUBLE_EQ(factor, 2.0);
  }
}

TEST(VolatilityTracker, HalvingIsAlsoFactorTwo) {
  VolatilityTracker tracker(0);
  int count = 40;
  for (int week = 0; week < 3; ++week) {
    for (int i = 0; i < count; ++i) {
      tracker.on_probe(ProbeBuilder().from(block_a(1)).at(week * kWeek + i));
    }
    count /= 2;
  }
  const auto result = tracker.result();
  for (const auto factor : result.packet_change.sorted()) {
    EXPECT_DOUBLE_EQ(factor, 2.0);
  }
}

TEST(VolatilityTracker, SourceChangeCountsDistinctSources) {
  VolatilityTracker tracker(0);
  // Week 0: 2 sources; week 1: 4 sources (each sending many packets).
  for (int i = 0; i < 2; ++i) {
    for (int p = 0; p < 50; ++p) {
      tracker.on_probe(ProbeBuilder().from(block_a(static_cast<std::uint32_t>(i))).at(p));
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int p = 0; p < 25; ++p) {
      tracker.on_probe(
          ProbeBuilder().from(block_a(static_cast<std::uint32_t>(i))).at(kWeek + p));
    }
  }
  const auto result = tracker.result();
  ASSERT_EQ(result.source_change.size(), 1u);
  EXPECT_DOUBLE_EQ(result.source_change.sorted()[0], 2.0);  // 2 -> 4 sources
  EXPECT_DOUBLE_EQ(result.packet_change.sorted()[0], 1.0);  // 100 -> 100 packets
}

TEST(VolatilityTracker, CampaignsTrackedSeparately) {
  VolatilityTracker tracker(0);
  Campaign campaign;
  campaign.source = block_a(7);
  campaign.first_seen_us = 10;
  tracker.on_campaign(campaign);
  campaign.first_seen_us = kWeek + 10;
  tracker.on_campaign(campaign);
  campaign.first_seen_us = kWeek + 20;
  tracker.on_campaign(campaign);
  const auto result = tracker.result();
  ASSERT_EQ(result.campaign_change.size(), 1u);
  EXPECT_DOUBLE_EQ(result.campaign_change.sorted()[0], 2.0);  // 1 -> 2 campaigns
}

TEST(VolatilityTracker, BlocksAreIndependent) {
  VolatilityTracker tracker(0);
  // Block A is stable; block B quadruples.
  for (int week = 0; week < 2; ++week) {
    for (int i = 0; i < 10; ++i) {
      tracker.on_probe(ProbeBuilder().from(block_a(1)).at(week * kWeek + i));
    }
  }
  for (int i = 0; i < 5; ++i) tracker.on_probe(ProbeBuilder().from(block_b(1)).at(i));
  for (int i = 0; i < 20; ++i) {
    tracker.on_probe(ProbeBuilder().from(block_b(1)).at(kWeek + i));
  }
  const auto result = tracker.result();
  EXPECT_EQ(result.netblocks, 2u);
  auto factors = std::vector<double>(result.packet_change.sorted().begin(),
                                     result.packet_change.sorted().end());
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[0], 1.0);
  EXPECT_DOUBLE_EQ(factors[1], 4.0);
}

TEST(VolatilityTracker, AppearingBlockUsesZeroFactor) {
  VolatilityTracker tracker(0);
  // Nothing in week 0 for block B, activity in week 1; block A anchors
  // the two-week span.
  for (int i = 0; i < 3; ++i) tracker.on_probe(ProbeBuilder().from(block_a(1)).at(i));
  for (int i = 0; i < 3; ++i) {
    tracker.on_probe(ProbeBuilder().from(block_a(1)).at(kWeek + i));
  }
  for (int i = 0; i < 5; ++i) {
    tracker.on_probe(ProbeBuilder().from(block_b(1)).at(kWeek + i));
  }
  const auto result = tracker.result();
  // Block B contributes the "appearance" factor of 64.
  EXPECT_DOUBLE_EQ(result.packet_change.value_at_fraction(1.0), 64.0);
}

TEST(VolatilityTracker, EmptyTrackerYieldsEmptyResult) {
  VolatilityTracker tracker(0);
  const auto result = tracker.result();
  EXPECT_EQ(result.netblocks, 0u);
  EXPECT_TRUE(result.packet_change.empty());
  EXPECT_TRUE(result.source_change.empty());
  EXPECT_TRUE(result.campaign_change.empty());
}

}  // namespace
}  // namespace synscan::core
