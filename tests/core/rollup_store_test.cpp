// Tests for the persistent `.spr` rollup store (core/rollup_store.h):
// round-trip fidelity, header stat, and — the part that matters
// operationally — every corruption/staleness mode degrading to a clean
// nullopt so `run_shards` falls back to re-analysis instead of serving
// bad summaries.
#include "core/rollup_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/shard.h"
#include "net/packet.h"
#include "pcap/pcap.h"
#include "report/json.h"

namespace synscan::core {
namespace {

namespace fs = std::filesystem;

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// A capture with two sources: one qualifying campaign plus one small
/// flow left open at stream end, so the rollup exercises campaigns,
/// boundary segments and all three tallies.
void write_capture(const fs::path& path) {
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  const auto emit = [&](std::uint32_t source, std::uint32_t dest, net::TimeUs ts,
                        std::uint16_t port) {
    net::TcpFrameSpec tcp;
    tcp.src_ip = net::Ipv4Address(source);
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + dest);
    tcp.src_port = 44444;
    tcp.dst_port = port;
    tcp.sequence = 7 + dest;
    frame.timestamp_us = ts;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  };
  for (std::uint32_t i = 0; i < 150; ++i) {
    emit(0x05000001u, i, 1'000'000 + static_cast<net::TimeUs>(i) * 10'000, 80);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    emit(0x05000002u, i, 2'600'000 + static_cast<net::TimeUs>(i) * 10'000, 443);
  }
  writer.flush();
}

struct StoreFixture : ::testing::Test {
  fs::path dir;
  fs::path capture;
  fs::path rollup_path;
  CacheIdentity identity;
  std::uint64_t fingerprint = 0;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir = fs::temp_directory_path() /
          (std::string("synscan_spr_") + info->name());
    fs::remove_all(dir);
    fs::create_directories(dir);
    capture = dir / "capture.pcap";
    write_capture(capture);
    rollup_path = rollup_path_for(capture);
    const auto id = cache_identity(capture);
    ASSERT_TRUE(id.has_value());
    identity = *id;
    fingerprint =
        analysis_fingerprint(TrackerConfig{}, test_telescope().monitored_count());
  }
  void TearDown() override { fs::remove_all(dir); }

  [[nodiscard]] CaptureRollup analyze() const {
    IngestOptions ingest;
    ingest.use_cache = false;
    return analyze_shard(capture, test_telescope(),
                         enrich::InternetRegistry::synthetic_default(),
                         TrackerConfig{}, ingest);
  }

  void save(const CaptureRollup& rollup) const {
    ASSERT_TRUE(save_rollup(rollup_path, rollup, identity, fingerprint));
  }

  [[nodiscard]] std::optional<CaptureRollup> load() const {
    return load_rollup(rollup_path, enrich::InternetRegistry::synthetic_default(),
                       identity, fingerprint);
  }

  /// Flips one payload byte in place (offset from the end stays clear of
  /// the 64-byte header for any non-trivial payload).
  void corrupt_byte(std::uint64_t offset_from_end) const {
    std::fstream file(rollup_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(file.tellg());
    ASSERT_GT(size, 64u + offset_from_end);
    const auto pos = static_cast<std::streamoff>(size - 1 - offset_from_end);
    file.seekg(pos);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(pos);
    file.write(&byte, 1);
  }
};

/// The equality surface: the report JSON the merged analysis serves.
std::string report_of(const fs::path& capture_path, bool use_store) {
  const std::vector<fs::path> captures = {capture_path};
  const auto plan = plan_shards(captures);
  ShardRunOptions options;
  options.workers = 1;
  options.use_rollup_store = use_store;
  options.ingest.use_cache = false;
  auto run = run_shards(plan, test_telescope(),
                        enrich::InternetRegistry::synthetic_default(),
                        TrackerConfig{}, options);
  std::string out;
  report::append_counters_json(out, run.analysis.result);
  out.push_back('\n');
  report::append_campaigns_jsonl(out, run.analysis.result.campaigns);
  return out;
}

TEST_F(StoreFixture, SaveLoadRoundTrip) {
  const auto rollup = analyze();
  save(rollup);
  const auto loaded = load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->frames, rollup.frames);
  EXPECT_EQ(loaded->max_timestamp_us, rollup.max_timestamp_us);
  EXPECT_EQ(loaded->sensor.scan_probes, rollup.sensor.scan_probes);
  EXPECT_EQ(loaded->campaigns.size(), rollup.campaigns.size());
  ASSERT_EQ(loaded->segments.size(), rollup.segments.size());
  EXPECT_EQ(loaded->ports.total_packets(), rollup.ports.total_packets());
  EXPECT_EQ(loaded->ports.total_sources(), rollup.ports.total_sources());
  EXPECT_EQ(loaded->types.total_packets(), rollup.types.total_packets());
  EXPECT_EQ(loaded->geo.total_packets(), rollup.geo.total_packets());
}

TEST_F(StoreFixture, StatReportsStoredHeader) {
  const auto rollup = analyze();
  save(rollup);
  const auto info = rollup_stat(rollup_path);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->source_size, identity.source_size);
  EXPECT_EQ(info->source_mtime_ns, identity.source_mtime_ns);
  EXPECT_EQ(info->analysis_fingerprint, fingerprint);
  EXPECT_EQ(info->campaigns, rollup.campaigns.size());
  EXPECT_EQ(info->segments, rollup.segments.size());
  EXPECT_EQ(info->file_size, 64u + info->payload_size);
}

TEST_F(StoreFixture, StatMissingFileIsNullopt) {
  EXPECT_FALSE(rollup_stat(dir / "nope.spr").has_value());
}

TEST_F(StoreFixture, CorruptPayloadByteInvalidatesRollup) {
  save(analyze());
  corrupt_byte(10);
  EXPECT_FALSE(load().has_value());
}

TEST_F(StoreFixture, TruncatedFileInvalidatesRollup) {
  save(analyze());
  const auto size = fs::file_size(rollup_path);
  fs::resize_file(rollup_path, size - 7);
  EXPECT_FALSE(load().has_value());
  // Truncated below the header, stat fails too.
  fs::resize_file(rollup_path, 32);
  EXPECT_FALSE(rollup_stat(rollup_path).has_value());
  EXPECT_FALSE(load().has_value());
}

TEST_F(StoreFixture, StaleSourceIdentityInvalidatesRollup) {
  save(analyze());
  CacheIdentity changed = identity;
  changed.source_size += 1;
  EXPECT_FALSE(load_rollup(rollup_path,
                           enrich::InternetRegistry::synthetic_default(), changed,
                           fingerprint)
                   .has_value());
  changed = identity;
  changed.source_mtime_ns += 1;
  EXPECT_FALSE(load_rollup(rollup_path,
                           enrich::InternetRegistry::synthetic_default(), changed,
                           fingerprint)
                   .has_value());
}

TEST_F(StoreFixture, AnalysisConfigChangeInvalidatesRollup) {
  save(analyze());
  TrackerConfig tightened;
  tightened.min_distinct_destinations *= 2;
  const auto other =
      analysis_fingerprint(tightened, test_telescope().monitored_count());
  ASSERT_NE(other, fingerprint);
  EXPECT_FALSE(load_rollup(rollup_path,
                           enrich::InternetRegistry::synthetic_default(), identity,
                           other)
                   .has_value());
}

TEST_F(StoreFixture, SweepIntervalDoesNotInvalidateRollup) {
  // Results are sweep-schedule-independent, so retuning the sweep must
  // keep a decade of cached shards valid.
  TrackerConfig retuned;
  retuned.sweep_interval *= 4;
  EXPECT_EQ(analysis_fingerprint(retuned, test_telescope().monitored_count()),
            fingerprint);
}

TEST_F(StoreFixture, RunShardsFallsBackToReanalysisOnCorruptRollup) {
  const auto reference = report_of(capture, false);

  // Build the store, then corrupt it: the run must re-analyze (a miss),
  // rewrite the rollup, and still produce the reference report.
  {
    const auto plan = plan_shards(std::vector<fs::path>{capture});
    ShardRunOptions options;
    options.workers = 1;
    options.ingest.use_cache = false;
    const auto built = run_shards(plan, test_telescope(),
                                  enrich::InternetRegistry::synthetic_default(),
                                  TrackerConfig{}, options);
    EXPECT_EQ(built.stats.store_misses, 1u);
    EXPECT_EQ(built.stats.store_writes, 1u);
  }
  corrupt_byte(10);
  {
    const auto plan = plan_shards(std::vector<fs::path>{capture});
    ShardRunOptions options;
    options.workers = 1;
    options.ingest.use_cache = false;
    auto run = run_shards(plan, test_telescope(),
                          enrich::InternetRegistry::synthetic_default(),
                          TrackerConfig{}, options);
    EXPECT_EQ(run.stats.store_hits, 0u);
    EXPECT_EQ(run.stats.store_misses, 1u);
    EXPECT_EQ(run.stats.store_writes, 1u);
    std::string out;
    report::append_counters_json(out, run.analysis.result);
    out.push_back('\n');
    report::append_campaigns_jsonl(out, run.analysis.result.campaigns);
    EXPECT_EQ(out, reference);
  }
  // The rewrite healed the store: the next run hits.
  EXPECT_EQ(report_of(capture, true), reference);
}

}  // namespace
}  // namespace synscan::core
