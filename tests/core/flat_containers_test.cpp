// Unit tests for the flat inline-first containers behind the tracker
// hot path (docs/PERFORMANCE.md): HybridU32Set, PortPacketMap and
// FlowIndexTable, plus the tracker-level pooling behaviour they enable.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/flow_table.h"
#include "core/hybrid_set.h"
#include "core/port_map.h"
#include "core/tracker.h"
#include "simgen/rng.h"
#include "test_support.h"

namespace synscan::core {
namespace {

TEST(HybridU32Set, InlineInsertAndDuplicates) {
  HybridU32Set set;
  for (std::uint32_t i = 0; i < HybridU32Set::kInlineCapacity; ++i) {
    EXPECT_TRUE(set.insert(i * 7));
    EXPECT_FALSE(set.insert(i * 7));  // duplicate
  }
  EXPECT_EQ(set.size(), HybridU32Set::kInlineCapacity);
  EXPECT_FALSE(set.promoted());
  for (std::uint32_t i = 0; i < HybridU32Set::kInlineCapacity; ++i) {
    EXPECT_TRUE(set.contains(i * 7));
  }
  EXPECT_FALSE(set.contains(999));
}

TEST(HybridU32Set, PromotesPastInlineCapacity) {
  HybridU32Set set;
  for (std::uint32_t i = 0; i < HybridU32Set::kInlineCapacity; ++i) {
    set.insert(i);
  }
  EXPECT_FALSE(set.promoted());
  EXPECT_TRUE(set.insert(HybridU32Set::kInlineCapacity));
  EXPECT_TRUE(set.promoted());
  EXPECT_EQ(set.size(), HybridU32Set::kInlineCapacity + 1);
  // Everything inserted pre-promotion is still present.
  for (std::uint32_t i = 0; i <= HybridU32Set::kInlineCapacity; ++i) {
    EXPECT_TRUE(set.contains(i));
    EXPECT_FALSE(set.insert(i));
  }
}

TEST(HybridU32Set, HandlesZeroValue) {
  // 0 is the empty-slot sentinel internally; the set must still store it.
  HybridU32Set set;
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
  // And past promotion too.
  for (std::uint32_t i = 1; i <= 40; ++i) set.insert(i);
  EXPECT_TRUE(set.promoted());
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_EQ(set.size(), 41u);
}

TEST(HybridU32Set, MatchesStdSetUnderChurn) {
  HybridU32Set set;
  std::set<std::uint32_t> model;
  simgen::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto value = rng.next_u32() % 4096;
    EXPECT_EQ(set.insert(value), model.insert(value).second);
    EXPECT_EQ(set.size(), model.size());
  }
  for (std::uint32_t value = 0; value < 4096; ++value) {
    EXPECT_EQ(set.contains(value), model.count(value) == 1) << value;
  }
}

TEST(HybridU32Set, ClearRetainsPromotedCapacity) {
  HybridU32Set set;
  for (std::uint32_t i = 0; i < 5000; ++i) set.insert(i);
  ASSERT_TRUE(set.promoted());
  const auto capacity = set.slot_capacity();
  EXPECT_GT(capacity, 0u);

  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.promoted());
  EXPECT_FALSE(set.contains(123));

  // Re-promotion starts from the recycled backing store, not from the
  // initial 64 slots: the pool reuse path allocates nothing new until
  // the set outgrows its previous high-water mark.
  for (std::uint32_t i = 0; i < 5000; ++i) set.insert(i + 1000000);
  EXPECT_EQ(set.slot_capacity(), capacity);
}

TEST(PortPacketMap, InlineAccumulation) {
  PortPacketMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.add(443, 2));
  EXPECT_FALSE(map.add(443, 3));  // existing key
  EXPECT_EQ(map.at(443), 5u);
  EXPECT_EQ(map.get(443), 5u);
  EXPECT_EQ(map.get(80), 0u);
  EXPECT_TRUE(map.contains(443));
  EXPECT_FALSE(map.contains(80));
  EXPECT_THROW((void)map.at(80), std::out_of_range);
  map[80] += 7;
  EXPECT_EQ(map.get(80), 7u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_FALSE(map.promoted());
}

TEST(PortPacketMap, PromotesPastInlineCapacity) {
  PortPacketMap map;
  for (std::uint16_t p = 0; p < PortPacketMap::kInlineCapacity; ++p) {
    map.add(static_cast<std::uint16_t>(p * 3), p + 1);
  }
  EXPECT_FALSE(map.promoted());
  map.add(60000, 42);
  EXPECT_TRUE(map.promoted());
  EXPECT_EQ(map.size(), PortPacketMap::kInlineCapacity + 1);
  for (std::uint16_t p = 0; p < PortPacketMap::kInlineCapacity; ++p) {
    EXPECT_EQ(map.get(static_cast<std::uint16_t>(p * 3)), p + 1u);
  }
  EXPECT_EQ(map.get(60000), 42u);
}

TEST(PortPacketMap, IterationCoversAllEntries) {
  PortPacketMap map;
  std::map<std::uint16_t, std::uint64_t> model;
  simgen::Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const auto port = static_cast<std::uint16_t>(rng.uniform(1000));
    const std::uint64_t n = 1 + rng.uniform(10);
    map.add(port, n);
    model[port] += n;
  }
  ASSERT_TRUE(map.promoted());
  std::map<std::uint16_t, std::uint64_t> seen;
  for (const auto& [port, packets] : map) {
    EXPECT_TRUE(seen.emplace(port, packets).second) << "duplicate port " << port;
  }
  EXPECT_EQ(seen, model);
}

TEST(PortPacketMap, ClearRetainsPromotedCapacity) {
  PortPacketMap map;
  for (std::uint32_t p = 0; p < 2000; ++p) {
    map.add(static_cast<std::uint16_t>(p), 1);
  }
  ASSERT_TRUE(map.promoted());
  const auto capacity = map.slot_capacity();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.promoted());
  for (std::uint32_t p = 0; p < 2000; ++p) {
    map.add(static_cast<std::uint16_t>(p + 10000), 1);
  }
  EXPECT_EQ(map.slot_capacity(), capacity);
}

TEST(FlowIndexTable, InsertFindEraseChurnMatchesStdMap) {
  FlowIndexTable table;
  std::unordered_map<std::uint32_t, std::uint32_t> model;
  simgen::Rng rng(31);
  std::uint32_t next_value = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto key = rng.next_u32() % 30000;
    const auto op = rng.uniform(10);
    if (op < 6) {
      auto [value, inserted] = table.find_or_insert(key);
      auto [it, model_inserted] = model.try_emplace(key, 0);
      EXPECT_EQ(inserted, model_inserted) << "key " << key;
      if (inserted) {
        value = next_value++;
        it->second = value;
      } else {
        EXPECT_EQ(value, it->second) << "key " << key;
      }
    } else if (op < 8) {
      const auto* found = table.find(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(found, nullptr) << "key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "key " << key;
        EXPECT_EQ(*found, it->second);
      }
    } else {
      EXPECT_EQ(table.erase(key), model.erase(key) == 1) << "key " << key;
    }
    EXPECT_EQ(table.size(), model.size());
  }
  // for_each visits exactly the live set.
  std::unordered_map<std::uint32_t, std::uint32_t> visited;
  table.for_each([&](std::uint32_t key, std::uint32_t value) {
    EXPECT_TRUE(visited.emplace(key, value).second) << "duplicate key " << key;
  });
  EXPECT_EQ(visited.size(), model.size());
  for (const auto& [key, value] : model) {
    const auto it = visited.find(key);
    ASSERT_NE(it, visited.end()) << "key " << key;
    EXPECT_EQ(it->second, value);
  }
}

TEST(FlowIndexTable, ClearRetainsCapacityAndRehashCounter) {
  FlowIndexTable table;
  for (std::uint32_t key = 0; key < 100000; ++key) {
    table.find_or_insert(key).first = key;
  }
  EXPECT_GT(table.rehashes(), 0u);
  const auto rehashes = table.rehashes();
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  // Refilling to the same size needs no further rehash.
  for (std::uint32_t key = 0; key < 100000; ++key) {
    table.find_or_insert(key).first = key;
  }
  EXPECT_EQ(table.rehashes(), rehashes);
}

TEST(TrackerPooling, ExpiryRestartReusesFlowInPlace) {
  TrackerConfig config;
  config.min_distinct_destinations = 1;
  config.min_internet_pps = 0.0;
  std::vector<Campaign> campaigns;
  CampaignTracker tracker(config, 1000,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });

  const auto src = net::Ipv4Address(0x01020304);
  for (std::uint32_t d = 0; d < 64; ++d) {
    tracker.feed(synscan::testing::ProbeBuilder()
                     .from(src)
                     .to(net::Ipv4Address(0xc6330000u + d))
                     .port(static_cast<std::uint16_t>(d))
                     .at(1000 + d));
  }
  // Same source returns after expiry: its flow is closed and reset in
  // place — counted as both an expiry and a reuse, with no flow freed
  // to (or drawn from) the pool.
  tracker.feed(synscan::testing::ProbeBuilder()
                   .from(src)
                   .to(net::Ipv4Address(0xc6330001u))
                   .port(80)
                   .at(1000 + 3 * net::kMicrosPerHour));
  EXPECT_EQ(tracker.counters().expired_flows, 1u);
  EXPECT_EQ(tracker.counters().flow_reuses, 1u);
  EXPECT_EQ(tracker.pooled_free_flows(), 0u);
  EXPECT_EQ(tracker.open_flows(), 1u);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].distinct_destinations, 64u);

  tracker.finish();
  ASSERT_EQ(campaigns.size(), 2u);
  EXPECT_EQ(campaigns[1].distinct_destinations, 1u);
}

TEST(TrackerPooling, SweepReturnsFlowsToPoolForReuse) {
  TrackerConfig config;
  config.sweep_interval = 8;
  config.min_distinct_destinations = 1;
  config.min_internet_pps = 0.0;
  std::uint64_t closed = 0;
  CampaignTracker tracker(config, 1000, [&](Campaign&&) { ++closed; });

  // Eight sources, then a quiet gap plus eight fresh sources: the sweep
  // evicts the first population and the second draws from the pool.
  for (std::uint32_t s = 0; s < 8; ++s) {
    tracker.feed(synscan::testing::ProbeBuilder()
                     .from(net::Ipv4Address(0x0a000000u + s))
                     .to(net::Ipv4Address(0xc6330000u + s))
                     .port(80)
                     .at(1000 + s));
  }
  const auto later = 1000 + 3 * net::kMicrosPerHour;
  for (std::uint32_t s = 0; s < 8; ++s) {
    tracker.feed(synscan::testing::ProbeBuilder()
                     .from(net::Ipv4Address(0x0b000000u + s))
                     .to(net::Ipv4Address(0xc6330000u + s))
                     .port(443)
                     .at(later + s));
  }
  EXPECT_EQ(tracker.counters().sweeps, 2u);
  EXPECT_EQ(tracker.counters().expired_flows, 8u);
  EXPECT_EQ(closed, 8u);
  EXPECT_EQ(tracker.open_flows(), 8u);
  // The sweep returned the first population's flows to the free list.
  EXPECT_EQ(tracker.pooled_free_flows(), 8u);

  // A third batch of fresh sources draws those pooled flows back out
  // instead of growing the pool.
  for (std::uint32_t s = 0; s < 4; ++s) {
    tracker.feed(synscan::testing::ProbeBuilder()
                     .from(net::Ipv4Address(0x0c000000u + s))
                     .to(net::Ipv4Address(0xc6330000u + s))
                     .port(22)
                     .at(later + 100 + s));
  }
  EXPECT_EQ(tracker.counters().flow_reuses, 4u);
  EXPECT_EQ(tracker.pooled_free_flows(), 4u);
  EXPECT_EQ(tracker.open_flows(), 12u);
}

TEST(TrackerPooling, PromotionCountersFire) {
  TrackerConfig config;
  std::vector<Campaign> campaigns;
  CampaignTracker tracker(config, 1000,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  const auto src = net::Ipv4Address(0x01020304);
  for (std::uint32_t d = 0; d < HybridU32Set::kInlineCapacity + 4; ++d) {
    for (std::uint32_t p = 0; p < PortPacketMap::kInlineCapacity + 4; ++p) {
      tracker.feed(synscan::testing::ProbeBuilder()
                       .from(src)
                       .to(net::Ipv4Address(0xc6330000u + d))
                       .port(static_cast<std::uint16_t>(1000 + p))
                       .at(1000 + d * 100 + p));
    }
  }
  EXPECT_EQ(tracker.counters().dest_promotions, 1u);
  EXPECT_EQ(tracker.counters().port_promotions, 1u);
}

}  // namespace
}  // namespace synscan::core
