// Test-only reference implementation of the campaign tracker, kept on
// the std containers the production tracker used before the flat-table
// rewrite (open-addressing flow table, hybrid destination sets, pooled
// flows — see docs/PERFORMANCE.md).
//
// The differential test feeds identical probe streams through this and
// through `core::CampaignTracker` and asserts identical campaign sets
// and counters, so any behavioural drift in the optimized hot path is
// caught against an implementation whose correctness is easy to audit.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/campaign.h"
#include "core/tracker.h"
#include "fingerprint/classifier.h"
#include "stats/telescope_model.h"
#include "telescope/sensor.h"

namespace synscan::testing {

/// Straightforward std-container port of the pre-optimization tracker.
/// Mirrors `core::CampaignTracker` semantics exactly; only the data
/// structures differ.
class ReferenceTracker {
 public:
  using Sink = std::function<void(core::Campaign&&)>;

  ReferenceTracker(core::TrackerConfig config, std::uint64_t monitored_addresses,
                   Sink sink)
      : config_(config), model_(monitored_addresses), sink_(std::move(sink)) {}

  void feed(const telescope::ScanProbe& probe) {
    ++counters_.probes;
    now_ = std::max(now_, probe.timestamp_us);

    auto [it, inserted] = flows_.try_emplace(probe.source.value());
    Flow& flow = it->second;
    if (inserted) {
      flow.first_seen_us = probe.timestamp_us;
      flow.evidence = fingerprint::ToolEvidence(config_.classifier);
      counters_.peak_open_flows =
          std::max<std::uint64_t>(counters_.peak_open_flows, flows_.size());
    } else if (probe.timestamp_us - flow.last_seen_us > config_.expiry) {
      close_flow(it->first, flow);
      ++counters_.expired_flows;
      flow = Flow{};
      flow.first_seen_us = probe.timestamp_us;
      flow.evidence = fingerprint::ToolEvidence(config_.classifier);
    }

    flow.last_seen_us = std::max(flow.last_seen_us, probe.timestamp_us);
    ++flow.packets;
    flow.destinations.insert(probe.destination.value());
    ++flow.port_packets[probe.destination_port];
    flow.evidence.observe(probe);

    if (++feeds_since_sweep_ >= config_.sweep_interval) {
      feeds_since_sweep_ = 0;
      sweep(now_);
    }
  }

  void finish() {
    for (auto& [source, flow] : flows_) {
      // Stream-end closes count as expired when the scan had already
      // gone quiet for longer than the expiry (mirrors the production
      // tracker's timestamp-pure expired_flows definition).
      if (now_ - flow.last_seen_us > config_.expiry) ++counters_.expired_flows;
      close_flow(source, flow);
    }
    flows_.clear();
  }

  [[nodiscard]] const core::TrackerCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Flow {
    net::TimeUs first_seen_us = 0;
    net::TimeUs last_seen_us = 0;
    std::uint64_t packets = 0;
    std::unordered_set<std::uint32_t> destinations;
    std::unordered_map<std::uint16_t, std::uint64_t> port_packets;
    fingerprint::ToolEvidence evidence;
  };

  void close_flow(std::uint32_t source, Flow& flow) {
    const auto hits = static_cast<double>(flow.packets);
    const auto us = flow.last_seen_us - flow.first_seen_us;
    const double duration =
        us < net::kMicrosPerSecond
            ? 1.0
            : static_cast<double>(us) / static_cast<double>(net::kMicrosPerSecond);
    const double pps = model_.extrapolate_pps(hits, duration);

    if (flow.destinations.size() >= config_.min_distinct_destinations &&
        pps >= config_.min_internet_pps) {
      core::Campaign campaign;
      campaign.id = next_id_++;
      campaign.source = net::Ipv4Address(source);
      campaign.first_seen_us = flow.first_seen_us;
      campaign.last_seen_us = flow.last_seen_us;
      campaign.packets = flow.packets;
      campaign.distinct_destinations =
          static_cast<std::uint32_t>(flow.destinations.size());
      for (const auto& [port, packets] : flow.port_packets) {
        campaign.port_packets[port] = packets;
      }
      campaign.tool = flow.evidence.verdict();
      campaign.extrapolated_pps = pps;
      campaign.extrapolated_packets = model_.extrapolate_probes(hits);
      campaign.coverage_fraction =
          model_.coverage_fraction(static_cast<double>(flow.destinations.size()));
      ++counters_.campaigns;
      sink_(std::move(campaign));
    } else {
      ++counters_.subthreshold_flows;
      counters_.subthreshold_packets += flow.packets;
    }
  }

  void sweep(net::TimeUs now) {
    ++counters_.sweeps;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (now - it->second.last_seen_us > config_.expiry) {
        close_flow(it->first, it->second);
        ++counters_.expired_flows;
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
  }

  core::TrackerConfig config_;
  stats::TelescopeModel model_;
  Sink sink_;
  std::unordered_map<std::uint32_t, Flow> flows_;
  core::TrackerCounters counters_;
  net::TimeUs now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t feeds_since_sweep_ = 0;
};

}  // namespace synscan::testing
