#include "core/analysis_campaigns.h"

#include <gtest/gtest.h>

#include "core/analysis_geo.h"
#include "core/analysis_summary.h"
#include "core/analysis_tools.h"
#include "core/analysis_types.h"
#include "stats/hypothesis.h"
#include "test_support.h"

namespace synscan::core {
namespace {

Campaign make_campaign(std::uint32_t source, fingerprint::Tool tool,
                       std::initializer_list<std::pair<std::uint16_t, std::uint64_t>> ports,
                       double pps = 1000.0, double coverage = 0.01,
                       net::TimeUs start = 0) {
  Campaign campaign;
  campaign.source = net::Ipv4Address(source);
  campaign.tool = tool;
  campaign.first_seen_us = start;
  campaign.last_seen_us = start + 60 * net::kMicrosPerSecond;
  campaign.extrapolated_pps = pps;
  campaign.coverage_fraction = coverage;
  for (const auto& [port, packets] : ports) {
    campaign.port_packets[port] = packets;
    campaign.packets += packets;
  }
  return campaign;
}

TEST(ToolShares, ByScansAndByPackets) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kZmap, {{80, 10}}));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kZmap, {{80, 10}}));
  campaigns.push_back(make_campaign(3, fingerprint::Tool::kMasscan, {{443, 180}}));
  const auto shares = tool_shares(campaigns);
  EXPECT_NEAR(shares.by_scans.share(fingerprint::Tool::kZmap), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(shares.by_packets.share(fingerprint::Tool::kMasscan), 0.9, 1e-12);
}

TEST(TopPortsByScans, CountsCampaignsPerPort) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kUnknown, {{80, 1}, {8080, 1}}));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kUnknown, {{80, 500}}));
  campaigns.push_back(make_campaign(3, fingerprint::Tool::kUnknown, {{22, 5}}));
  const auto top = top_ports_by_scans(campaigns, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].port, 80);
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_NEAR(top[0].share, 2.0 / 3.0, 1e-12);
}

TEST(SpeedSamples, FilterByTool) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kNmap, {{22, 1}}, 9000));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kNmap, {{22, 1}}, 11000));
  campaigns.push_back(make_campaign(3, fingerprint::Tool::kMirai, {{23, 1}}, 300));
  const auto nmap = speed_sample(campaigns, fingerprint::Tool::kNmap);
  ASSERT_EQ(nmap.size(), 2u);
  EXPECT_EQ(speed_sample(campaigns).size(), 3u);
  EXPECT_EQ(speed_sample(campaigns, fingerprint::Tool::kZmap).size(), 0u);
}

TEST(TopSpeedMean, TakesFastest) {
  std::vector<Campaign> campaigns;
  for (const double pps : {100.0, 200.0, 300.0, 400.0}) {
    campaigns.push_back(make_campaign(1, fingerprint::Tool::kUnknown, {{80, 1}}, pps));
  }
  EXPECT_DOUBLE_EQ(top_speed_mean(campaigns, 2), 350.0);
  EXPECT_DOUBLE_EQ(top_speed_mean(campaigns, 10), 250.0);  // clamped to all
  EXPECT_EQ(top_speed_mean({}, 5), 0.0);
}

TEST(VerticalScanCensus, ThresholdBuckets) {
  std::vector<Campaign> campaigns;
  Campaign vertical;
  vertical.source = net::Ipv4Address(1);
  for (std::uint32_t p = 1; p <= 12000; ++p) vertical.port_packets[static_cast<std::uint16_t>(p)] = 1;
  vertical.packets = 12000;
  vertical.extrapolated_pps = 500000;
  campaigns.push_back(vertical);
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kUnknown, {{80, 5}}));

  const auto census = vertical_scan_census(campaigns);
  EXPECT_EQ(census.total_campaigns, 2u);
  EXPECT_EQ(census.over_10_ports, 1u);
  EXPECT_EQ(census.over_1000_ports, 1u);
  EXPECT_EQ(census.over_10000_ports, 1u);
  EXPECT_EQ(census.max_ports, 12000u);
  EXPECT_GT(census.mean_speed_over_1000_mbps, census.mean_speed_all_mbps / 2);
}

TEST(SpeedBreadthSample, PairsUpForCorrelation) {
  std::vector<Campaign> campaigns;
  for (int i = 1; i <= 20; ++i) {
    Campaign campaign;
    campaign.source = net::Ipv4Address(static_cast<std::uint32_t>(i));
    for (int p = 0; p < i; ++p) campaign.port_packets[static_cast<std::uint16_t>(p + 1)] = 1;
    campaign.extrapolated_pps = 100.0 * i;  // speed grows with breadth
    campaigns.push_back(campaign);
  }
  const auto sample = speed_breadth_sample(campaigns);
  const auto corr = stats::pearson(sample.ports, sample.pps);
  EXPECT_GT(corr.r, 0.99);  // §5.3's positive correlation, by construction
  EXPECT_LT(corr.p_value, 0.001);
}

TEST(CampaignsPerDay, BucketsByStartDay) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(
      make_campaign(1, fingerprint::Tool::kZmap, {{80, 1}}, 1000, 0.01, 0));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kZmap, {{80, 1}}, 1000, 0.01,
                                    2 * net::kMicrosPerDay + 5));
  campaigns.push_back(make_campaign(3, fingerprint::Tool::kMasscan, {{80, 1}}, 1000,
                                    0.01, 2 * net::kMicrosPerDay));
  const auto days = campaigns_per_day(campaigns, 0, fingerprint::Tool::kZmap);
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0], 1u);
  EXPECT_EQ(days[1], 0u);
  EXPECT_EQ(days[2], 1u);
}

TEST(DistinctSources, CountsUniquePerTool) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kZmap, {{80, 1}}));
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kZmap, {{80, 1}}));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kZmap, {{80, 1}}));
  EXPECT_EQ(distinct_sources(campaigns, fingerprint::Tool::kZmap), 2u);
}

TEST(PortToolMix, SharesPerPort) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kZmap, {{80, 75}}));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kMirai, {{80, 25}}));
  campaigns.push_back(make_campaign(3, fingerprint::Tool::kNmap, {{22, 10}}));
  const auto mix = port_tool_mix(campaigns, 10);
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].port, 80);  // most packets
  EXPECT_DOUBLE_EQ(mix[0].tool_share[fingerprint::tool_index(fingerprint::Tool::kZmap)],
                   0.75);
  EXPECT_DOUBLE_EQ(mix[0].tool_share[fingerprint::tool_index(fingerprint::Tool::kMirai)],
                   0.25);
  EXPECT_DOUBLE_EQ(mix[1].tool_share[fingerprint::tool_index(fingerprint::Tool::kNmap)],
                   1.0);
}

TEST(YearlySummary, AssemblesAllBlocks) {
  PortTally tally;
  for (int i = 0; i < 100; ++i) {
    tally.on_probe(synscan::testing::ProbeBuilder()
                       .from(net::Ipv4Address(0x01000000u + static_cast<std::uint32_t>(i % 7)))
                       .port(i % 2 == 0 ? 80 : 22));
  }
  std::vector<Campaign> campaigns;
  campaigns.push_back(make_campaign(1, fingerprint::Tool::kZmap, {{80, 60}}));
  campaigns.push_back(make_campaign(2, fingerprint::Tool::kUnknown, {{22, 40}}));

  const auto summary = yearly_summary(2020, 50.0, tally, campaigns);
  EXPECT_EQ(summary.year, 2020);
  EXPECT_EQ(summary.total_packets, 100u);
  EXPECT_DOUBLE_EQ(summary.packets_per_day, 2.0);
  EXPECT_EQ(summary.total_scans, 2u);
  EXPECT_NEAR(summary.scans_per_month, 2.0 / 50.0 * 30.44, 1e-9);
  EXPECT_EQ(summary.distinct_sources, 7u);
  EXPECT_DOUBLE_EQ(summary.mean_packets_per_scan, 50.0);
  EXPECT_EQ(summary.top_ports_by_packets.size(), 2u);
  EXPECT_NEAR(summary.tools.by_scans.share(fingerprint::Tool::kZmap), 0.5, 1e-12);
}

TEST(GeoTally, CountryAttribution) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto cn_pools = registry.records_of(enrich::CountryCode("CN"));
  const auto us_pools = registry.records_of(enrich::CountryCode("US"));
  ASSERT_FALSE(cn_pools.empty());
  ASSERT_FALSE(us_pools.empty());

  GeoTally tally(registry);
  for (int i = 0; i < 80; ++i) {
    tally.on_probe(synscan::testing::ProbeBuilder()
                       .from(cn_pools[0]->prefix.at(10))
                       .port(3389));
  }
  for (int i = 0; i < 20; ++i) {
    tally.on_probe(synscan::testing::ProbeBuilder()
                       .from(us_pools[0]->prefix.at(10))
                       .port(443));
  }
  EXPECT_NEAR(tally.country_share(enrich::CountryCode("CN")), 0.8, 1e-12);
  EXPECT_NEAR(tally.country_share(enrich::CountryCode("US")), 0.2, 1e-12);
  const auto top = tally.top_countries(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].country, enrich::CountryCode("CN"));

  // Port 3389 is >80% Chinese; port 443 is >80% American.
  const auto dominated = tally.dominated_ports(0.8, 10);
  EXPECT_EQ(dominated.at(enrich::CountryCode("CN")), 1u);
  EXPECT_EQ(dominated.at(enrich::CountryCode("US")), 1u);

  const auto mix = tally.port_country_mix(3389, 3);
  ASSERT_FALSE(mix.empty());
  EXPECT_EQ(mix[0].country, enrich::CountryCode("CN"));
  EXPECT_DOUBLE_EQ(mix[0].share, 1.0);
}

TEST(CampaignCountryShares, RanksByCampaignCount) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto nl_pools = registry.records_of(enrich::CountryCode("NL"));
  ASSERT_FALSE(nl_pools.empty());
  std::vector<Campaign> campaigns;
  for (int i = 0; i < 3; ++i) {
    campaigns.push_back(
        make_campaign(nl_pools[0]->prefix.at(5).value(), fingerprint::Tool::kUnknown,
                      {{80, 1}}));
  }
  const auto shares = campaign_country_shares(campaigns, registry, 5);
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(shares[0].country, enrich::CountryCode("NL"));
  EXPECT_DOUBLE_EQ(shares[0].share, 1.0);
}

TEST(ToolCountryMix, FiltersTool) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto ru_pools = registry.records_of(enrich::CountryCode("RU"));
  ASSERT_FALSE(ru_pools.empty());
  std::vector<Campaign> campaigns;
  for (int i = 0; i < 9; ++i) {
    campaigns.push_back(make_campaign(ru_pools[0]->prefix.at(5).value(),
                                      fingerprint::Tool::kMasscan, {{80, 1}}));
  }
  campaigns.push_back(make_campaign(ru_pools[0]->prefix.at(6).value(),
                                    fingerprint::Tool::kZmap, {{80, 1}}));
  const auto mix = tool_country_mix(campaigns, registry, fingerprint::Tool::kMasscan, 3);
  ASSERT_EQ(mix.size(), 1u);
  EXPECT_EQ(mix[0].country, enrich::CountryCode("RU"));
  EXPECT_EQ(mix[0].scans, 9u);
  EXPECT_DOUBLE_EQ(mix[0].share, 1.0);
}

}  // namespace
}  // namespace synscan::core
