// Differential test: the flat-table campaign tracker against the
// std-container reference implementation (tests/core/reference_tracker.h)
// on identical probe streams — including expiry-reset, sweep, promotion,
// and stream-end paths — plus serial-vs-parallel merge determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/tracker.h"
#include "reference_tracker.h"
#include "simgen/generator.h"
#include "simgen/rng.h"
#include "telescope/sensor.h"
#include "test_support.h"

namespace synscan::core {
namespace {

constexpr std::uint64_t kTelescopeSize = 71536;

std::vector<std::pair<std::uint16_t, std::uint64_t>> sorted_ports(
    const PortPacketMap& map) {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> rows(map.begin(), map.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

void sort_campaigns(std::vector<Campaign>& campaigns) {
  std::sort(campaigns.begin(), campaigns.end(), [](const Campaign& a, const Campaign& b) {
    if (a.first_seen_us != b.first_seen_us) return a.first_seen_us < b.first_seen_us;
    if (a.source != b.source) return a.source < b.source;
    return a.last_seen_us < b.last_seen_us;
  });
}

/// Field-by-field equality, ignoring `id`: the two implementations close
/// flows in different table orders, so ids are not comparable — the sets
/// must be.
void expect_identical(std::vector<Campaign> actual, std::vector<Campaign> expected) {
  sort_campaigns(actual);
  sort_campaigns(expected);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const auto& a = actual[i];
    const auto& e = expected[i];
    EXPECT_EQ(a.source, e.source) << "campaign " << i;
    EXPECT_EQ(a.first_seen_us, e.first_seen_us) << "campaign " << i;
    EXPECT_EQ(a.last_seen_us, e.last_seen_us) << "campaign " << i;
    EXPECT_EQ(a.packets, e.packets) << "campaign " << i;
    EXPECT_EQ(a.distinct_destinations, e.distinct_destinations) << "campaign " << i;
    EXPECT_EQ(sorted_ports(a.port_packets), sorted_ports(e.port_packets))
        << "campaign " << i;
    EXPECT_EQ(a.tool, e.tool) << "campaign " << i;
    EXPECT_DOUBLE_EQ(a.extrapolated_pps, e.extrapolated_pps) << "campaign " << i;
    EXPECT_DOUBLE_EQ(a.extrapolated_packets, e.extrapolated_packets) << "campaign " << i;
    EXPECT_DOUBLE_EQ(a.coverage_fraction, e.coverage_fraction) << "campaign " << i;
  }
}

void expect_identical_counters(const TrackerCounters& actual,
                               const TrackerCounters& expected) {
  EXPECT_EQ(actual.probes, expected.probes);
  EXPECT_EQ(actual.campaigns, expected.campaigns);
  EXPECT_EQ(actual.subthreshold_flows, expected.subthreshold_flows);
  EXPECT_EQ(actual.subthreshold_packets, expected.subthreshold_packets);
  EXPECT_EQ(actual.expired_flows, expected.expired_flows);
  EXPECT_EQ(actual.sweeps, expected.sweeps);
  EXPECT_EQ(actual.peak_open_flows, expected.peak_open_flows);
}

void run_differential(const std::vector<telescope::ScanProbe>& probes,
                      TrackerConfig config) {
  std::vector<Campaign> flat_campaigns;
  CampaignTracker flat(config, kTelescopeSize,
                       [&](Campaign&& c) { flat_campaigns.push_back(std::move(c)); });
  std::vector<Campaign> ref_campaigns;
  testing::ReferenceTracker reference(
      config, kTelescopeSize,
      [&](Campaign&& c) { ref_campaigns.push_back(std::move(c)); });

  for (const auto& probe : probes) {
    flat.feed(probe);
    reference.feed(probe);
  }
  flat.finish();
  reference.finish();

  expect_identical(std::move(flat_campaigns), std::move(ref_campaigns));
  expect_identical_counters(flat.counters(), reference.counters());
}

/// Mixed adversarial stream: a sparse noise floor (flows that expire and
/// whose table slots churn), heavy horizontal scanners (destination-set
/// promotion), vertical scanners (port-map promotion), duplicate
/// destinations, and quiet gaps that force sweeps and same-source scan
/// restarts.
std::vector<telescope::ScanProbe> adversarial_stream(std::uint64_t count,
                                                     std::uint64_t seed) {
  simgen::Rng rng(seed);
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(count);
  net::TimeUs now = 0;
  std::uint16_t vertical_port = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (i > 0 && i % (count / 6 + 1) == 0) now += 3 * net::kMicrosPerHour;
    now += 200;
    telescope::ScanProbe probe;
    probe.timestamp_us = now;
    probe.ttl = 64;
    probe.window = 1024;
    probe.source_port = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
    const auto draw = rng.uniform(100);
    if (draw < 60) {
      probe.source = net::Ipv4Address(0x0a000000u + rng.next_u32() % 5000);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 64);
      probe.destination_port = static_cast<std::uint16_t>(rng.uniform(4) == 0 ? 23 : 80);
    } else if (draw < 90) {
      probe.source = net::Ipv4Address(0x05050000u + rng.next_u32() % 24);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 8192);
      probe.destination_port = 443;
    } else {
      probe.source = net::Ipv4Address(0x07070000u + rng.next_u32() % 4);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 16);
      probe.destination_port = ++vertical_port;
    }
    // A zero destination now and then exercises the hybrid set's
    // zero-value side flag.
    if (rng.uniform(997) == 0) probe.destination = net::Ipv4Address(0);
    probes.push_back(probe);
  }
  return probes;
}

TEST(TrackerDifferential, AdversarialMixMatchesReference) {
  TrackerConfig config;
  config.sweep_interval = 1 << 12;  // frequent sweeps
  run_differential(adversarial_stream(120000, 97), config);
}

TEST(TrackerDifferential, TinySweepIntervalMatchesReference) {
  // Sweep every 64 probes: the erase/backward-shift path runs thousands
  // of times over a churning table.
  TrackerConfig config;
  config.sweep_interval = 64;
  config.expiry = 30 * net::kMicrosPerMinute;
  run_differential(adversarial_stream(30000, 1234), config);
}

TEST(TrackerDifferential, ExpiryRestartMatchesReference) {
  // Same sources bursting, going quiet past expiry, bursting again —
  // the in-place flow-reset path — with destination counts straddling
  // the promotion threshold on the second run.
  std::vector<telescope::ScanProbe> probes;
  net::TimeUs now = 0;
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t s = 0; s < 40; ++s) {
      const auto dests = 5 + s * 7;  // 5..278: below and above inline/threshold
      for (std::uint32_t d = 0; d < dests; ++d) {
        probes.push_back(synscan::testing::ProbeBuilder()
                             .from(net::Ipv4Address(0x09000000u + s))
                             .to(net::Ipv4Address(0xc6330000u + d))
                             .port(static_cast<std::uint16_t>(80 + (d % 12)))
                             .at(now + d * 1000));
      }
    }
    now += 3 * net::kMicrosPerHour;  // everyone expires; next round restarts
  }
  std::sort(probes.begin(), probes.end(), [](const auto& a, const auto& b) {
    return a.timestamp_us < b.timestamp_us;
  });
  run_differential(probes, TrackerConfig{});
}

TEST(TrackerDifferential, SimulatedWindowMatchesReference) {
  // A full simgen window through the real sensor: the closest thing to
  // replaying a capture through both implementations.
  const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {});
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 20240806;
  config.port_table = {{80, 40}, {443, 30}, {23, 30}};
  config.noise_sources = 200;
  config.backscatter_fraction = 0.1;
  simgen::GroupSpec group;
  group.name = "diff-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 6;
  group.campaigns = 6;
  group.hits_median = 400;
  group.hits_sigma = 1.2;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);

  telescope::Sensor sensor(telescope);
  std::vector<telescope::ScanProbe> probes;
  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  generator.run([&](const net::RawFrame& frame) {
    telescope::ScanProbe probe;
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      probes.push_back(probe);
    }
  });
  ASSERT_GT(probes.size(), 1000u);

  TrackerConfig tracker_config;
  tracker_config.sweep_interval = 1 << 10;
  run_differential(probes, tracker_config);
}

TEST(TrackerDifferential, SerialAndParallelMergeDeterministic) {
  // The same simulated window through the serial pipeline and through
  // 1/2/4-worker parallel analyzers: identical campaign sets, and the
  // parallel merges bit-identical to each other (deterministic order and
  // ids regardless of worker count).
  const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {});
  simgen::YearConfig config;
  config.year = 2022;
  config.window_days = 1;
  config.seed = 777;
  config.port_table = {{80, 60}, {443, 40}};
  config.noise_sources = 100;
  config.backscatter_fraction = 0.05;
  simgen::GroupSpec group;
  group.name = "par-group";
  group.tool = simgen::WireTool::kMasscan;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 5;
  group.campaigns = 5;
  group.hits_median = 300;
  group.hits_sigma = 1.2;
  group.pps_median = 400000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);

  std::vector<net::RawFrame> frames;
  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  generator.run([&](const net::RawFrame& frame) { frames.push_back(frame); });

  Pipeline serial(telescope);
  for (const auto& frame : frames) serial.feed_frame(frame);
  auto serial_result = serial.finish();

  std::vector<PipelineResult> parallel_results;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ParallelAnalyzer analyzer(telescope, workers);
    for (const auto& frame : frames) analyzer.feed_frame(frame);
    parallel_results.push_back(analyzer.finish());
  }

  for (auto& result : parallel_results) {
    expect_identical(result.campaigns, serial_result.campaigns);
    EXPECT_EQ(result.tracker.probes, serial_result.tracker.probes);
    EXPECT_EQ(result.tracker.campaigns, serial_result.tracker.campaigns);
    EXPECT_EQ(result.tracker.subthreshold_flows,
              serial_result.tracker.subthreshold_flows);
    EXPECT_EQ(result.tracker.subthreshold_packets,
              serial_result.tracker.subthreshold_packets);
  }
  // Merge determinism: identical order and ids across worker counts.
  for (std::size_t r = 1; r < parallel_results.size(); ++r) {
    const auto& a = parallel_results[0].campaigns;
    const auto& b = parallel_results[r].campaigns;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].source, b[i].source);
      EXPECT_EQ(a[i].first_seen_us, b[i].first_seen_us);
      EXPECT_EQ(a[i].packets, b[i].packets);
    }
  }
}

}  // namespace
}  // namespace synscan::core
