#include "core/blocklist.h"

#include <gtest/gtest.h>

namespace synscan::core {
namespace {

constexpr net::TimeUs kDay = net::kMicrosPerDay;

Campaign campaign_of(std::uint32_t source, net::TimeUs start,
                     net::TimeUs duration = net::kMicrosPerHour,
                     std::uint64_t packets = 200) {
  Campaign campaign;
  campaign.source = net::Ipv4Address(source);
  campaign.first_seen_us = start;
  campaign.last_seen_us = start + duration;
  campaign.packets = packets;
  return campaign;
}

TEST(Blocklist, HarvestSelectsByEndTime) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(campaign_of(1, 0));                 // ends day 0
  campaigns.push_back(campaign_of(2, kDay + 1000));       // ends day 1
  campaigns.push_back(campaign_of(3, 3 * kDay));          // ends day 3
  const auto list = Blocklist::harvest(campaigns, kDay, 2 * kDay);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(net::Ipv4Address(2)));
  EXPECT_FALSE(list.contains(net::Ipv4Address(1)));
}

TEST(Blocklist, EvaluationCountsBlockedShare) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(campaign_of(1, 0));  // harvested
  campaigns.push_back(campaign_of(2, 0));  // harvested
  // Evaluation window: source 1 returns, sources 3 and 4 are new.
  campaigns.push_back(campaign_of(1, 2 * kDay, net::kMicrosPerHour, 100));
  campaigns.push_back(campaign_of(3, 2 * kDay, net::kMicrosPerHour, 300));
  campaigns.push_back(campaign_of(4, 2 * kDay, net::kMicrosPerHour, 600));

  const auto list = Blocklist::harvest(campaigns, 0, kDay);
  EXPECT_EQ(list.size(), 2u);
  const auto result = evaluate_blocklist(list, campaigns, 2 * kDay, 3 * kDay);
  EXPECT_EQ(result.eval_campaigns, 3u);
  EXPECT_EQ(result.blocked_campaigns, 1u);
  EXPECT_NEAR(result.campaign_block_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(result.packet_block_rate(), 100.0 / 1000.0, 1e-12);
}

TEST(Blocklist, EmptyEvaluationWindow) {
  const Blocklist list;
  const auto result = evaluate_blocklist(list, {}, 0, kDay);
  EXPECT_EQ(result.campaign_block_rate(), 0.0);
  EXPECT_EQ(result.packet_block_rate(), 0.0);
}

TEST(Blocklist, DecayCurveDropsForOneShotSources) {
  // Sources scan once on day 0 and never return; fresh sources appear
  // every day. A day-0 blocklist blocks nothing later.
  std::vector<Campaign> campaigns;
  for (std::uint32_t i = 0; i < 10; ++i) {
    campaigns.push_back(campaign_of(100 + i, i * 1000));
  }
  for (std::size_t day = 1; day <= 5; ++day) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      campaigns.push_back(
          campaign_of(1000 * static_cast<std::uint32_t>(day) + i,
                      static_cast<net::TimeUs>(day) * kDay + i * 1000));
    }
  }
  const auto curve = blocklist_decay_curve(campaigns, 0, 0, 0, 4);
  ASSERT_EQ(curve.size(), 4u);
  for (const auto rate : curve) EXPECT_EQ(rate, 0.0);
}

TEST(Blocklist, DecayCurveStaysHighForRecurringSources) {
  // Institutional-style sources scan every day: the same list keeps
  // blocking them.
  std::vector<Campaign> campaigns;
  for (std::size_t day = 0; day <= 6; ++day) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      campaigns.push_back(campaign_of(
          7000 + i, static_cast<net::TimeUs>(day) * kDay + i * 1000));
    }
  }
  const auto curve = blocklist_decay_curve(campaigns, 0, 0, 0, 5);
  ASSERT_EQ(curve.size(), 5u);
  for (const auto rate : curve) EXPECT_DOUBLE_EQ(rate, 1.0);
}

TEST(Blocklist, LagDelaysEvaluation) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(campaign_of(1, 0));
  campaigns.push_back(campaign_of(1, 2 * kDay));  // returns on day 2 only
  const auto no_lag = blocklist_decay_curve(campaigns, 0, 0, 0, 2);
  ASSERT_EQ(no_lag.size(), 2u);
  EXPECT_EQ(no_lag[0], 0.0);  // day 1: nothing to block (no campaigns -> 0)
  EXPECT_EQ(no_lag[1], 1.0);  // day 2: the return is blocked
  const auto lagged = blocklist_decay_curve(campaigns, 0, 0, 1, 1);
  ASSERT_EQ(lagged.size(), 1u);
  EXPECT_EQ(lagged[0], 1.0);
}

}  // namespace
}  // namespace synscan::core
