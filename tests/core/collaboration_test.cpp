#include "core/collaboration.h"

#include <gtest/gtest.h>

namespace synscan::core {
namespace {

Campaign shard_member(std::uint32_t source, net::TimeUs start, std::uint16_t port,
                      fingerprint::Tool tool = fingerprint::Tool::kZmap,
                      double coverage = 0.0065) {
  static std::uint64_t next_id = 1;
  Campaign campaign;
  campaign.id = next_id++;
  campaign.source = net::Ipv4Address(source);
  campaign.first_seen_us = start;
  campaign.last_seen_us = start + net::kMicrosPerHour;
  campaign.packets = 465;
  campaign.port_packets[port] = 465;
  campaign.tool = tool;
  campaign.coverage_fraction = coverage;
  return campaign;
}

constexpr std::uint32_t kSubnet = 0x0a141e00;  // 10.20.30.0/24

TEST(Collaboration, DetectsShardedScan) {
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 8; ++host) {
    campaigns.push_back(shard_member(kSubnet + host, host * 1000, 443));
  }
  const auto census = detect_collaborations(campaigns);
  ASSERT_EQ(census.scans.size(), 1u);
  const auto& scan = census.scans[0];
  EXPECT_EQ(scan.members, 8u);
  EXPECT_EQ(scan.port, 443);
  EXPECT_EQ(scan.tool, fingerprint::Tool::kZmap);
  EXPECT_EQ(scan.subnet.value(), kSubnet);
  EXPECT_NEAR(scan.joint_coverage, 8 * 0.0065, 1e-9);
  EXPECT_NEAR(scan.mean_member_coverage, 0.0065, 1e-12);
  EXPECT_EQ(census.collaborating_campaigns, 8u);
  EXPECT_DOUBLE_EQ(census.collaborating_fraction(), 1.0);
}

TEST(Collaboration, DifferentPortsDoNotCluster) {
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 6; ++host) {
    campaigns.push_back(
        shard_member(kSubnet + host, 1000, host % 2 == 0 ? 443 : 80));
  }
  // 3 on each port: both reach min_members=3 but as separate scans.
  const auto census = detect_collaborations(campaigns);
  EXPECT_EQ(census.scans.size(), 2u);
}

TEST(Collaboration, DifferentToolsDoNotCluster) {
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 4; ++host) {
    campaigns.push_back(shard_member(kSubnet + host, 1000, 443,
                                     host % 2 == 0 ? fingerprint::Tool::kZmap
                                                   : fingerprint::Tool::kMasscan));
  }
  const auto census = detect_collaborations(campaigns);
  EXPECT_TRUE(census.scans.empty());  // 2 + 2 < min_members
}

TEST(Collaboration, DifferentSubnetsDoNotCluster) {
  std::vector<Campaign> campaigns;
  campaigns.push_back(shard_member(kSubnet + 1, 0, 443));
  campaigns.push_back(shard_member(kSubnet + 0x100 + 1, 0, 443));  // next /24
  campaigns.push_back(shard_member(kSubnet + 0x200 + 1, 0, 443));
  const auto census = detect_collaborations(campaigns);
  EXPECT_TRUE(census.scans.empty());
}

TEST(Collaboration, StartWindowCutsClusters) {
  CollaborationConfig config;
  config.start_window = net::kMicrosPerHour;
  std::vector<Campaign> campaigns;
  // Three at t=0, three 6 hours later: two separate logical scans.
  for (std::uint32_t host = 1; host <= 3; ++host) {
    campaigns.push_back(shard_member(kSubnet + host, host * 100, 443));
  }
  for (std::uint32_t host = 4; host <= 6; ++host) {
    campaigns.push_back(
        shard_member(kSubnet + host, 6 * net::kMicrosPerHour + host, 443));
  }
  const auto census = detect_collaborations(campaigns, config);
  EXPECT_EQ(census.scans.size(), 2u);
}

TEST(Collaboration, MinMembersRespected) {
  CollaborationConfig config;
  config.min_members = 5;
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 4; ++host) {
    campaigns.push_back(shard_member(kSubnet + host, 0, 443));
  }
  EXPECT_TRUE(detect_collaborations(campaigns, config).scans.empty());
  campaigns.push_back(shard_member(kSubnet + 5, 0, 443));
  EXPECT_EQ(detect_collaborations(campaigns, config).scans.size(), 1u);
}

TEST(Collaboration, WiderPrefixGroupsMore) {
  CollaborationConfig config;
  config.source_prefix = 16;
  std::vector<Campaign> campaigns;
  campaigns.push_back(shard_member(kSubnet + 1, 0, 443));
  campaigns.push_back(shard_member(kSubnet + 0x100 + 1, 0, 443));
  campaigns.push_back(shard_member(kSubnet + 0x200 + 1, 0, 443));
  const auto census = detect_collaborations(campaigns, config);
  ASSERT_EQ(census.scans.size(), 1u);
  EXPECT_EQ(census.scans[0].members, 3u);
}

TEST(Collaboration, JointCoverageCapsAtOne) {
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 5; ++host) {
    campaigns.push_back(shard_member(kSubnet + host, 0, 443,
                                     fingerprint::Tool::kZmap, 0.5));
  }
  const auto census = detect_collaborations(campaigns);
  ASSERT_EQ(census.scans.size(), 1u);
  EXPECT_DOUBLE_EQ(census.scans[0].joint_coverage, 1.0);
}

TEST(Collaboration, PrimaryPortIsHeaviest) {
  std::vector<Campaign> campaigns;
  for (std::uint32_t host = 1; host <= 3; ++host) {
    auto campaign = shard_member(kSubnet + host, 0, 443);
    campaign.port_packets[80] = 10;  // light secondary port
    campaigns.push_back(campaign);
  }
  const auto census = detect_collaborations(campaigns);
  ASSERT_EQ(census.scans.size(), 1u);
  EXPECT_EQ(census.scans[0].port, 443);
}

TEST(Collaboration, EmptyInput) {
  const auto census = detect_collaborations({});
  EXPECT_TRUE(census.scans.empty());
  EXPECT_EQ(census.collaborating_fraction(), 0.0);
}

}  // namespace
}  // namespace synscan::core
