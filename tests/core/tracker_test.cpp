#include "core/tracker.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace synscan::core {
namespace {

using synscan::testing::ProbeBuilder;

constexpr std::uint64_t kTelescopeSize = 71536;
// One telescope hit corresponds to ~60,042 Internet-wide probes; a probe
// per second therefore extrapolates far above the 100 pps threshold.
constexpr net::TimeUs kSecond = net::kMicrosPerSecond;

std::vector<telescope::ScanProbe> burst(net::Ipv4Address src, std::size_t count,
                                        net::TimeUs start, net::TimeUs gap,
                                        std::uint16_t port = 80) {
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    probes.push_back(ProbeBuilder()
                         .from(src)
                         .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                         .port(port)
                         .at(start + static_cast<net::TimeUs>(i) * gap));
  }
  return probes;
}

TEST(CampaignTracker, QualifyingBurstBecomesOneCampaign) {
  const auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150, 0, kSecond);
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  const auto& campaign = campaigns[0];
  EXPECT_EQ(campaign.packets, 150u);
  EXPECT_EQ(campaign.distinct_destinations, 150u);
  EXPECT_EQ(campaign.distinct_ports(), 1u);
  EXPECT_TRUE(campaign.targets_port(80));
  EXPECT_EQ(campaign.source.to_string(), "5.5.5.5");
}

TEST(CampaignTracker, TooFewDestinationsIsNoise) {
  const auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 99, 0, kSecond);
  std::vector<Campaign> campaigns;
  CampaignTracker tracker({}, kTelescopeSize,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  for (const auto& probe : probes) tracker.feed(probe);
  tracker.finish();
  EXPECT_TRUE(campaigns.empty());
  EXPECT_EQ(tracker.counters().subthreshold_flows, 1u);
  EXPECT_EQ(tracker.counters().subthreshold_packets, 99u);
}

TEST(CampaignTracker, RepeatedDestinationsDoNotCountAsDistinct) {
  std::vector<telescope::ScanProbe> probes;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(ProbeBuilder()
                         .from(net::Ipv4Address::from_octets(5, 5, 5, 5))
                         .to(net::Ipv4Address(0xc6330000u + (i % 50)))
                         .at(i * kSecond));
  }
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  EXPECT_TRUE(campaigns.empty());  // only 50 distinct destinations
}

TEST(CampaignTracker, SlowScanBelowRateThresholdIsNoise) {
  // 150 hits spaced 50 minutes apart: inferred Internet-wide rate is
  // 60042/3000s = 20 pps < 100.
  const auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150, 0,
                            50 * 60 * kSecond);
  TrackerConfig config;
  config.expiry = 2 * net::kMicrosPerHour;  // keep the flow alive between probes
  const auto campaigns = CampaignTracker::collect(config, kTelescopeSize, probes);
  EXPECT_TRUE(campaigns.empty());
}

TEST(CampaignTracker, GapBeyondExpirySplitsCampaigns) {
  auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150, 0, kSecond);
  const auto second_burst =
      burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150,
            150 * kSecond + 2 * net::kMicrosPerHour, kSecond);
  probes.insert(probes.end(), second_burst.begin(), second_burst.end());

  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 2u);
  EXPECT_EQ(campaigns[0].packets, 150u);
  EXPECT_EQ(campaigns[1].packets, 150u);
  EXPECT_LT(campaigns[0].last_seen_us, campaigns[1].first_seen_us);
}

TEST(CampaignTracker, GapWithinExpiryStaysOneCampaign) {
  auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150, 0, kSecond);
  const auto second_burst = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150,
                                  150 * kSecond + net::kMicrosPerHour / 2, kSecond);
  probes.insert(probes.end(), second_burst.begin(), second_burst.end());
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].packets, 300u);
}

TEST(CampaignTracker, ConcurrentSourcesTrackedIndependently) {
  std::vector<telescope::ScanProbe> probes;
  for (int i = 0; i < 150; ++i) {
    for (std::uint8_t s = 1; s <= 3; ++s) {
      probes.push_back(ProbeBuilder()
                           .from(net::Ipv4Address::from_octets(9, 9, 9, s))
                           .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                           .at(i * kSecond + s));
    }
  }
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  EXPECT_EQ(campaigns.size(), 3u);
}

TEST(CampaignTracker, ExtrapolationMatchesModel) {
  // 600 hits over 600 seconds -> telescope hit rate 1/s -> Internet-wide
  // ~60,042 pps, coverage 600/71536 of the telescope.
  const auto probes = burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 601, 0, kSecond);
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  const auto& campaign = campaigns[0];
  const stats::TelescopeModel model(kTelescopeSize);
  EXPECT_NEAR(campaign.extrapolated_pps, 601.0 / 600.0 / model.hit_probability(), 1.0);
  EXPECT_NEAR(campaign.coverage_fraction, 601.0 / 71536.0, 1e-9);
  EXPECT_GT(campaign.speed_mbps(), 0.0);
}

TEST(CampaignTracker, MultiPortCampaignTracksPortCounts) {
  std::vector<telescope::ScanProbe> probes;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(ProbeBuilder()
                         .from(net::Ipv4Address::from_octets(5, 5, 5, 5))
                         .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                         .port(i % 2 == 0 ? 80 : 8080)
                         .at(i * kSecond));
  }
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].distinct_ports(), 2u);
  EXPECT_EQ(campaigns[0].port_packets.at(80), 150u);
  EXPECT_EQ(campaigns[0].port_packets.at(8080), 150u);
}

TEST(CampaignTracker, SweepEvictsExpiredFlows) {
  TrackerConfig config;
  config.sweep_interval = 10;
  std::vector<Campaign> campaigns;
  CampaignTracker tracker(config, kTelescopeSize,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  // A qualifying burst from source A...
  for (const auto& probe :
       burst(net::Ipv4Address::from_octets(5, 5, 5, 5), 150, 0, kSecond)) {
    tracker.feed(probe);
  }
  // ...then unrelated traffic 3 hours later triggers the sweep.
  for (const auto& probe :
       burst(net::Ipv4Address::from_octets(6, 6, 6, 6), 20, 3 * net::kMicrosPerHour,
             kSecond)) {
    tracker.feed(probe);
  }
  EXPECT_EQ(campaigns.size(), 1u);  // A was emitted by the sweep, not finish()
  EXPECT_EQ(tracker.open_flows(), 1u);
  tracker.finish();
  EXPECT_EQ(tracker.open_flows(), 0u);
}

TEST(CampaignTracker, ToolVerdictAttachedToCampaign) {
  std::vector<telescope::ScanProbe> probes;
  for (int i = 0; i < 150; ++i) {
    probes.push_back(ProbeBuilder()
                         .from(net::Ipv4Address::from_octets(5, 5, 5, 5))
                         .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                         .ipid(54321)
                         .at(i * kSecond));
  }
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].tool, fingerprint::Tool::kZmap);
}

TEST(CampaignTracker, CampaignIdsAreUniqueAndIncreasing) {
  std::vector<telescope::ScanProbe> probes;
  for (std::uint8_t s = 1; s <= 4; ++s) {
    const auto b = burst(net::Ipv4Address::from_octets(9, 0, 0, s), 150,
                         s * 10 * kSecond, kSecond);
    probes.insert(probes.end(), b.begin(), b.end());
  }
  std::sort(probes.begin(), probes.end(),
            [](const auto& a, const auto& b) { return a.timestamp_us < b.timestamp_us; });
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 4u);
  for (std::size_t i = 1; i < campaigns.size(); ++i) {
    EXPECT_GT(campaigns[i].id, 0u);
  }
}

TEST(CampaignTracker, CountersAreConsistent) {
  std::vector<Campaign> campaigns;
  CampaignTracker tracker({}, kTelescopeSize,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  const auto good = burst(net::Ipv4Address::from_octets(1, 1, 1, 1), 200, 0, kSecond);
  const auto bad = burst(net::Ipv4Address::from_octets(2, 2, 2, 2), 10, 0, kSecond);
  for (const auto& probe : good) tracker.feed(probe);
  for (const auto& probe : bad) tracker.feed(probe);
  tracker.finish();
  EXPECT_EQ(tracker.counters().probes, 210u);
  EXPECT_EQ(tracker.counters().campaigns, 1u);
  EXPECT_EQ(tracker.counters().subthreshold_flows, 1u);
}

TEST(CampaignTracker, RequiresSink) {
  EXPECT_THROW(CampaignTracker({}, kTelescopeSize, nullptr), std::invalid_argument);
}

TEST(CampaignTracker, DurationFlooredAtOneSecond) {
  // All probes in the same microsecond still yield a finite rate.
  std::vector<telescope::ScanProbe> probes;
  for (int i = 0; i < 150; ++i) {
    probes.push_back(ProbeBuilder()
                         .from(net::Ipv4Address::from_octets(5, 5, 5, 5))
                         .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                         .at(1000));
  }
  const auto campaigns = CampaignTracker::collect({}, kTelescopeSize, probes);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_DOUBLE_EQ(campaigns[0].duration_seconds(), 1.0);
}

}  // namespace
}  // namespace synscan::core
