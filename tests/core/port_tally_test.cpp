#include "core/port_tally.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace synscan::core {
namespace {

using synscan::testing::ProbeBuilder;

net::Ipv4Address src(std::uint32_t i) { return net::Ipv4Address(0x05000000u + i); }

TEST(PortTally, CountsPacketsPerPort) {
  PortTally tally;
  for (int i = 0; i < 7; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  for (int i = 0; i < 3; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(443));
  EXPECT_EQ(tally.total_packets(), 10u);
  EXPECT_EQ(tally.packets_on_port(80), 7u);
  EXPECT_EQ(tally.packets_on_port(443), 3u);
  EXPECT_EQ(tally.packets_on_port(22), 0u);
}

TEST(PortTally, TopPortsByPacketsOrderedWithShares) {
  PortTally tally;
  for (int i = 0; i < 6; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(22));
  for (int i = 0; i < 3; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  for (int i = 0; i < 1; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(443));
  const auto top = tally.top_ports_by_packets(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].port, 22);
  EXPECT_DOUBLE_EQ(top[0].share, 0.6);
  EXPECT_EQ(top[1].port, 80);
  EXPECT_DOUBLE_EQ(top[1].share, 0.3);
}

TEST(PortTally, SourcesCountedOncePerPort) {
  PortTally tally;
  for (int i = 0; i < 5; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  tally.on_probe(ProbeBuilder().from(src(2)).port(80));
  EXPECT_EQ(tally.sources_on_port(80), 2u);
  EXPECT_EQ(tally.total_sources(), 2u);
}

TEST(PortTally, SourceScanningTwoPortsCountsForBoth) {
  PortTally tally;
  tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  tally.on_probe(ProbeBuilder().from(src(1)).port(8080));
  const auto top = tally.top_ports_by_sources(5);
  ASSERT_EQ(top.size(), 2u);
  // Shares use total distinct sources as denominator (paper convention),
  // so both ports report 100%.
  EXPECT_DOUBLE_EQ(top[0].share, 1.0);
  EXPECT_DOUBLE_EQ(top[1].share, 1.0);
}

TEST(PortTally, PortsPerSourceSample) {
  PortTally tally;
  tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  tally.on_probe(ProbeBuilder().from(src(2)).port(80));
  tally.on_probe(ProbeBuilder().from(src(2)).port(443));
  tally.on_probe(ProbeBuilder().from(src(2)).port(8080));
  auto sample = tally.ports_per_source_sample();
  std::sort(sample.begin(), sample.end());
  ASSERT_EQ(sample.size(), 2u);
  EXPECT_DOUBLE_EQ(sample[0], 1.0);
  EXPECT_DOUBLE_EQ(sample[1], 3.0);
}

TEST(PortTally, CoScanFraction) {
  PortTally tally;
  // Three sources scan 80; two of them also scan 8080.
  tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  tally.on_probe(ProbeBuilder().from(src(2)).port(80));
  tally.on_probe(ProbeBuilder().from(src(2)).port(8080));
  tally.on_probe(ProbeBuilder().from(src(3)).port(80));
  tally.on_probe(ProbeBuilder().from(src(3)).port(8080));
  EXPECT_NEAR(tally.co_scan_fraction(80, 8080), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(tally.co_scan_fraction(8080, 80), 1.0);
  EXPECT_EQ(tally.co_scan_fraction(22, 80), 0.0);
}

TEST(PortTally, PortsWithAtLeast) {
  PortTally tally;
  for (int i = 0; i < 10; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(80));
  for (int i = 0; i < 2; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(443));
  EXPECT_EQ(tally.ports_with_at_least(1), 2u);
  EXPECT_EQ(tally.ports_with_at_least(5), 1u);
  EXPECT_EQ(tally.ports_with_at_least(11), 0u);
}

TEST(PortTally, PrivilegedPortCoverage) {
  PortTally tally;
  // Heavy traffic on 3 privileged ports, nothing else: coverage ~ 3/1023.
  for (const std::uint16_t port : {22, 80, 443}) {
    for (int i = 0; i < 100; ++i) tally.on_probe(ProbeBuilder().from(src(1)).port(port));
  }
  EXPECT_NEAR(tally.privileged_port_coverage(0.01), 3.0 / 1023.0, 1e-9);
  // Ephemeral traffic does not count toward privileged coverage.
  for (int i = 0; i < 1000; ++i) tally.on_probe(ProbeBuilder().from(src(2)).port(8080));
  EXPECT_NEAR(tally.privileged_port_coverage(0.01), 3.0 / 1023.0, 1e-9);
}

TEST(PortTally, EmptyTally) {
  const PortTally tally;
  EXPECT_EQ(tally.total_packets(), 0u);
  EXPECT_EQ(tally.total_sources(), 0u);
  EXPECT_TRUE(tally.top_ports_by_packets(5).empty());
  EXPECT_EQ(tally.privileged_port_coverage(), 0.0);
  EXPECT_EQ(tally.co_scan_fraction(80, 8080), 0.0);
}

}  // namespace
}  // namespace synscan::core
