#include "core/probe_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "test_support.h"

namespace synscan::core {
namespace {

namespace fs = std::filesystem;

class ProbeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_probe_cache_test";
    fs::create_directories(dir_);
    source_ = dir_ / "capture.pcap";
    cache_ = dir_ / "capture.pcap.spc";
    std::ofstream out(source_, std::ios::binary);
    out << "stand-in capture bytes";
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] CacheIdentity identity() const {
    const auto id = cache_identity(source_);
    EXPECT_TRUE(id.has_value());
    return *id;
  }

  static telescope::ProbeBatch sample_batch(std::size_t rows, std::uint32_t salt) {
    telescope::ProbeBatch batch;
    for (std::size_t i = 0; i < rows; ++i) {
      testing::ProbeBuilder builder;
      builder.at(static_cast<net::TimeUs>(i) * 100)
          .from(net::Ipv4Address(salt + static_cast<std::uint32_t>(i)))
          .port(static_cast<std::uint16_t>(i % 7))
          .seq(salt ^ static_cast<std::uint32_t>(i))
          .ipid(static_cast<std::uint16_t>(i));
      batch.push_back(builder);
    }
    return batch;
  }

  fs::path dir_;
  fs::path source_;
  fs::path cache_;
};

TEST_F(ProbeCacheTest, WriteReadRoundTrip) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 7;
  sensor.malformed = 3;
  sensor.udp = 1;

  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(4, 100));
    writer.append(sample_batch(3, 900));
    ASSERT_TRUE(writer.commit(42, pcap::ReadStatus::kEndOfFile, sensor));
  }
  EXPECT_TRUE(fs::exists(cache_));
  EXPECT_FALSE(fs::exists(cache_.native() + ".tmp"));

  auto reader = ProbeCacheReader::open(cache_, id);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->frame_count(), 42u);
  EXPECT_EQ(reader->probe_count(), 7u);
  EXPECT_EQ(reader->terminal_status(), pcap::ReadStatus::kEndOfFile);
  EXPECT_EQ(reader->sensor().scan_probes, 7u);
  EXPECT_EQ(reader->sensor().malformed, 3u);
  EXPECT_EQ(reader->sensor().udp, 1u);

  telescope::ProbeBatch chunk;
  ASSERT_TRUE(reader->next_chunk(chunk));
  ASSERT_EQ(chunk.size(), 4u);
  const auto expected = sample_batch(4, 100);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunk.timestamp_us[i], expected.timestamp_us[i]);
    EXPECT_EQ(chunk.source[i], expected.source[i]);
    EXPECT_EQ(chunk.destination[i], expected.destination[i]);
    EXPECT_EQ(chunk.source_port[i], expected.source_port[i]);
    EXPECT_EQ(chunk.destination_port[i], expected.destination_port[i]);
    EXPECT_EQ(chunk.sequence[i], expected.sequence[i]);
    EXPECT_EQ(chunk.acknowledgment[i], expected.acknowledgment[i]);
    EXPECT_EQ(chunk.ip_id[i], expected.ip_id[i]);
    EXPECT_EQ(chunk.window[i], expected.window[i]);
    EXPECT_EQ(chunk.ttl[i], expected.ttl[i]);
  }
  ASSERT_TRUE(reader->next_chunk(chunk));
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_FALSE(reader->next_chunk(chunk));
  EXPECT_TRUE(chunk.empty());
}

TEST_F(ProbeCacheTest, PreservesTruncatedTerminalStatus) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 2;
  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(2, 5));
    ASSERT_TRUE(writer.commit(9, pcap::ReadStatus::kTruncated, sensor));
  }
  auto reader = ProbeCacheReader::open(cache_, id);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->terminal_status(), pcap::ReadStatus::kTruncated);
}

TEST_F(ProbeCacheTest, StaleIdentityIsRejected) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 1;
  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(1, 1));
    ASSERT_TRUE(writer.commit(1, pcap::ReadStatus::kEndOfFile, sensor));
  }
  auto changed = id;
  changed.source_size += 1;
  EXPECT_FALSE(ProbeCacheReader::open(cache_, changed).has_value());
  changed = id;
  changed.source_mtime_ns += 1;
  EXPECT_FALSE(ProbeCacheReader::open(cache_, changed).has_value());
  EXPECT_TRUE(ProbeCacheReader::open(cache_, id).has_value());
}

TEST_F(ProbeCacheTest, CorruptionIsRejected) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 8;
  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(8, 77));
    ASSERT_TRUE(writer.commit(8, pcap::ReadStatus::kEndOfFile, sensor));
  }

  // Flip one probe byte: the checksum must catch it.
  {
    std::fstream file(cache_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(136 + 8 + 3);
    file.put('\x5a');
  }
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
}

TEST_F(ProbeCacheTest, TornWriteIsRejected) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 8;
  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(8, 3));
    ASSERT_TRUE(writer.commit(8, pcap::ReadStatus::kEndOfFile, sensor));
  }
  fs::resize_file(cache_, fs::file_size(cache_) - 5);
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  fs::resize_file(cache_, 40);  // even into the header
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
}

TEST_F(ProbeCacheTest, AbandonLeavesNoFiles) {
  {
    ProbeCacheWriter writer(cache_, identity());
    writer.append(sample_batch(4, 4));
    // no commit: destructor abandons
  }
  EXPECT_FALSE(fs::exists(cache_));
  EXPECT_FALSE(fs::exists(cache_.native() + ".tmp"));
}

TEST_F(ProbeCacheTest, MissingCacheAndNonRegularSourcesHandled) {
  EXPECT_FALSE(ProbeCacheReader::open(cache_, identity()).has_value());
  EXPECT_FALSE(cache_identity(dir_).has_value());               // a directory
  EXPECT_FALSE(cache_identity(dir_ / "missing.pcap").has_value());
}

}  // namespace
}  // namespace synscan::core
