#include "core/probe_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "test_support.h"

namespace synscan::core {
namespace {

namespace fs = std::filesystem;

class ProbeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and
    // a shared dir would let one case's TearDown delete another's files.
    dir_ = fs::temp_directory_path() /
           (std::string("synscan_probe_cache_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    source_ = dir_ / "capture.pcap";
    cache_ = dir_ / "capture.pcap.spc";
    std::ofstream out(source_, std::ios::binary);
    out << "stand-in capture bytes";
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] CacheIdentity identity() const {
    const auto id = cache_identity(source_);
    EXPECT_TRUE(id.has_value());
    return *id;
  }

  static telescope::ProbeBatch sample_batch(std::size_t rows, std::uint32_t salt) {
    telescope::ProbeBatch batch;
    for (std::size_t i = 0; i < rows; ++i) {
      testing::ProbeBuilder builder;
      builder.at(static_cast<net::TimeUs>(i) * 100)
          .from(net::Ipv4Address(salt + static_cast<std::uint32_t>(i)))
          .port(static_cast<std::uint16_t>(i % 7))
          .seq(salt ^ static_cast<std::uint32_t>(i))
          .ipid(static_cast<std::uint16_t>(i));
      batch.push_back(builder);
    }
    return batch;
  }

  /// Writes `batch` to `path` in one append, all rows as probes.
  void write_cache(const fs::path& path, const telescope::ProbeBatch& batch,
                   CacheCodec codec) const {
    telescope::SensorCounters sensor;
    sensor.scan_probes = batch.size();
    ProbeCacheWriter writer(path, *cache_identity(source_), codec);
    writer.append(batch);
    ASSERT_TRUE(writer.commit(batch.size(), pcap::ReadStatus::kEndOfFile, sensor));
  }

  static void expect_rows_equal(const telescope::ProbeBatch& got, std::size_t at,
                                const telescope::ProbeBatch& want, std::size_t from,
                                std::size_t rows) {
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(got.timestamp_us[at + i], want.timestamp_us[from + i]);
      EXPECT_EQ(got.source[at + i], want.source[from + i]);
      EXPECT_EQ(got.destination[at + i], want.destination[from + i]);
      EXPECT_EQ(got.source_port[at + i], want.source_port[from + i]);
      EXPECT_EQ(got.destination_port[at + i], want.destination_port[from + i]);
      EXPECT_EQ(got.sequence[at + i], want.sequence[from + i]);
      EXPECT_EQ(got.acknowledgment[at + i], want.acknowledgment[from + i]);
      EXPECT_EQ(got.ip_id[at + i], want.ip_id[from + i]);
      EXPECT_EQ(got.window[at + i], want.window[from + i]);
      EXPECT_EQ(got.ttl[at + i], want.ttl[from + i]);
    }
  }

  static std::vector<std::uint8_t> slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  /// Reads every chunk back as one concatenated batch.
  static telescope::ProbeBatch drain(ProbeCacheReader& reader) {
    telescope::ProbeBatch all;
    telescope::ProbeBatch chunk;
    while (reader.next_chunk(chunk)) {
      for (std::size_t i = 0; i < chunk.size(); ++i) all.push_back(chunk.get(i));
    }
    return all;
  }

  fs::path dir_;
  fs::path source_;
  fs::path cache_;
};

TEST_F(ProbeCacheTest, WriteReadRoundTrip) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 7;
  sensor.malformed = 3;
  sensor.udp = 1;

  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(4, 100));
    writer.append(sample_batch(3, 900));
    ASSERT_TRUE(writer.commit(42, pcap::ReadStatus::kEndOfFile, sensor));
  }
  EXPECT_TRUE(fs::exists(cache_));
  EXPECT_FALSE(fs::exists(cache_.native() + ".tmp"));

  auto reader = ProbeCacheReader::open(cache_, id);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->frame_count(), 42u);
  EXPECT_EQ(reader->probe_count(), 7u);
  EXPECT_EQ(reader->codec(), CacheCodec::kDeltaVarint);
  EXPECT_EQ(reader->terminal_status(), pcap::ReadStatus::kEndOfFile);
  EXPECT_EQ(reader->sensor().scan_probes, 7u);
  EXPECT_EQ(reader->sensor().malformed, 3u);
  EXPECT_EQ(reader->sensor().udp, 1u);

  // The writer restages appends into the fixed row grid, so the two
  // small appends come back as one chunk holding all seven rows.
  telescope::ProbeBatch chunk;
  ASSERT_TRUE(reader->next_chunk(chunk));
  ASSERT_EQ(chunk.size(), 7u);
  expect_rows_equal(chunk, 0, sample_batch(4, 100), 0, 4);
  expect_rows_equal(chunk, 4, sample_batch(3, 900), 0, 3);
  EXPECT_FALSE(reader->next_chunk(chunk));
  EXPECT_TRUE(chunk.empty());
}

TEST_F(ProbeCacheTest, RawCodecRoundTrip) {
  const auto batch = sample_batch(9, 31);
  write_cache(cache_, batch, CacheCodec::kRaw);
  auto reader = ProbeCacheReader::open(cache_, identity());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->codec(), CacheCodec::kRaw);
  telescope::ProbeBatch chunk;
  ASSERT_TRUE(reader->next_chunk(chunk));
  ASSERT_EQ(chunk.size(), 9u);
  expect_rows_equal(chunk, 0, batch, 0, 9);
}

TEST_F(ProbeCacheTest, FileBytesIndependentOfAppendBatching) {
  const auto batch = sample_batch(23, 500);
  const auto whole = dir_ / "whole.spc";
  const auto split = dir_ / "split.spc";
  write_cache(whole, batch, CacheCodec::kDeltaVarint);
  {
    telescope::SensorCounters sensor;
    sensor.scan_probes = batch.size();
    ProbeCacheWriter writer(split, identity(), CacheCodec::kDeltaVarint);
    telescope::ProbeBatch piece;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      piece.push_back(batch.get(i));
      if (piece.size() == 5 || i + 1 == batch.size()) {
        writer.append(piece);
        piece.clear();
      }
    }
    ASSERT_TRUE(writer.commit(batch.size(), pcap::ReadStatus::kEndOfFile, sensor));
  }
  EXPECT_EQ(slurp(whole), slurp(split));
}

TEST_F(ProbeCacheTest, FixedRowGridSplitsLargeStreams) {
  const auto batch = sample_batch(kCacheRowsPerChunk + 3, 9);
  write_cache(cache_, batch, CacheCodec::kDeltaVarint);
  auto reader = ProbeCacheReader::open(cache_, identity());
  ASSERT_TRUE(reader.has_value());
  telescope::ProbeBatch chunk;
  ASSERT_TRUE(reader->next_chunk(chunk));
  EXPECT_EQ(chunk.size(), kCacheRowsPerChunk);
  ASSERT_TRUE(reader->next_chunk(chunk));
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_FALSE(reader->next_chunk(chunk));
}

TEST_F(ProbeCacheTest, DeltaCodecCompressesCorrelatedColumns) {
  // Sequential timestamps and near-sequential addresses — the shape of
  // real probe streams — must come out smaller than the raw layout.
  const auto batch = sample_batch(4096, 1000);
  const auto raw = dir_ / "raw.spc";
  const auto packed = dir_ / "packed.spc";
  write_cache(raw, batch, CacheCodec::kRaw);
  write_cache(packed, batch, CacheCodec::kDeltaVarint);
  EXPECT_LT(fs::file_size(packed), fs::file_size(raw));
}

TEST_F(ProbeCacheTest, PreservesTruncatedTerminalStatus) {
  const auto id = identity();
  telescope::SensorCounters sensor;
  sensor.scan_probes = 2;
  {
    ProbeCacheWriter writer(cache_, id);
    writer.append(sample_batch(2, 5));
    ASSERT_TRUE(writer.commit(9, pcap::ReadStatus::kTruncated, sensor));
  }
  auto reader = ProbeCacheReader::open(cache_, id);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->terminal_status(), pcap::ReadStatus::kTruncated);
}

TEST_F(ProbeCacheTest, StaleIdentityIsRejected) {
  const auto id = identity();
  write_cache(cache_, sample_batch(1, 1), CacheCodec::kDeltaVarint);
  auto changed = id;
  changed.source_size += 1;
  EXPECT_FALSE(ProbeCacheReader::open(cache_, changed).has_value());
  changed = id;
  changed.source_mtime_ns += 1;
  EXPECT_FALSE(ProbeCacheReader::open(cache_, changed).has_value());
  EXPECT_TRUE(ProbeCacheReader::open(cache_, id).has_value());
}

TEST_F(ProbeCacheTest, BitFlipInCompressedStreamIsRejected) {
  const auto id = identity();
  write_cache(cache_, sample_batch(64, 77), CacheCodec::kDeltaVarint);
  ASSERT_TRUE(ProbeCacheReader::open(cache_, id).has_value());
  // 136 = header, +8 row count, +8 length prefix: this lands inside the
  // timestamp varint stream. The checksum must catch the flip.
  {
    std::fstream file(cache_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(136 + 8 + 8 + 5);
    const auto byte = file.get();
    file.seekp(136 + 8 + 8 + 5);
    file.put(static_cast<char>(byte ^ 0x10));
  }
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  const auto report = cache_verify(cache_);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("checksum"), std::string::npos);
}

TEST_F(ProbeCacheTest, TruncatedCompressedColumnIsRejected) {
  const auto id = identity();
  write_cache(cache_, sample_batch(64, 3), CacheCodec::kDeltaVarint);
  // Cut into the fixed-width tail, then deep into the varint region;
  // both must read as "no cache", never as partial probes.
  fs::resize_file(cache_, fs::file_size(cache_) - 5);
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  fs::resize_file(cache_, 136 + 8 + 8 + 3);
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  EXPECT_NE(cache_verify(cache_).error.find("truncated"), std::string::npos);
  fs::resize_file(cache_, 40);  // even into the header
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
}

TEST_F(ProbeCacheTest, UnsupportedVersionIsRejected) {
  const auto id = identity();
  write_cache(cache_, sample_batch(4, 8), CacheCodec::kDeltaVarint);
  {
    std::fstream file(cache_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(4);
    file.put('\x03');  // version 3: a future format must read as stale
  }
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  const auto report = cache_verify(cache_);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("version"), std::string::npos);
}

TEST_F(ProbeCacheTest, UnknownCodecIsRejected) {
  const auto id = identity();
  write_cache(cache_, sample_batch(4, 8), CacheCodec::kDeltaVarint);
  {
    std::fstream file(cache_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(44);
    file.put('\x09');
  }
  EXPECT_FALSE(ProbeCacheReader::open(cache_, id).has_value());
  EXPECT_NE(cache_verify(cache_).error.find("codec"), std::string::npos);
}

TEST_F(ProbeCacheTest, VersionOneFilesStayReadable) {
  // A v1 file hand-built to the original layout: raw columns, one chunk
  // per append, zero in the (then reserved) codec slot.
  const auto id = identity();
  const auto batch = sample_batch(2, 55);
  std::vector<std::uint8_t> chunk;
  const auto le = [&chunk](std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) chunk.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  le(batch.size(), 8);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.timestamp_us[i], 8);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.source[i], 4);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.destination[i], 4);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.source_port[i], 2);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.destination_port[i], 2);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.sequence[i], 4);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.acknowledgment[i], 4);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.ip_id[i], 2);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.window[i], 2);
  for (std::size_t i = 0; i < batch.size(); ++i) le(batch.ttl[i], 1);

  // FNV-1a over little-endian 64-bit words, zero-padded tail.
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  for (std::size_t at = 0; at < chunk.size(); at += 8) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8 && at + i < chunk.size(); ++i) {
      word |= static_cast<std::uint64_t>(chunk[at + i]) << (8 * i);
    }
    checksum = (checksum ^ word) * 0x100000001b3ull;
  }

  std::vector<std::uint8_t> header;
  const auto hle = [&header](std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  hle(0x31637073, 4);  // "spc1"
  hle(1, 4);           // version 1
  hle(id.source_size, 8);
  hle(id.source_mtime_ns, 8);
  hle(batch.size(), 8);  // frame_count
  hle(batch.size(), 8);  // probe_count
  hle(0, 4);             // kEndOfFile
  hle(0, 4);             // reserved (pre-codec)
  hle(batch.size(), 8);  // scan_probes
  for (int i = 0; i < 9; ++i) hle(0, 8);
  hle(checksum, 8);
  ASSERT_EQ(header.size(), 136u);

  {
    std::ofstream out(cache_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size()));
  }

  auto reader = ProbeCacheReader::open(cache_, id);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->codec(), CacheCodec::kRaw);
  const auto got = drain(*reader);
  ASSERT_EQ(got.size(), batch.size());
  expect_rows_equal(got, 0, batch, 0, batch.size());

  const auto info = cache_stat(cache_);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->codec, CacheCodec::kRaw);
}

TEST_F(ProbeCacheTest, StatAndVerifyReportTheFile) {
  write_cache(cache_, sample_batch(12, 42), CacheCodec::kDeltaVarint);
  const auto info = cache_stat(cache_);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 2u);
  EXPECT_EQ(info->codec, CacheCodec::kDeltaVarint);
  EXPECT_EQ(info->probe_count, 12u);
  EXPECT_EQ(info->frame_count, 12u);
  EXPECT_EQ(info->sensor.scan_probes, 12u);
  EXPECT_EQ(info->file_size, fs::file_size(cache_));

  auto report = cache_verify(cache_, identity());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.chunks, 1u);
  EXPECT_EQ(report.rows, 12u);

  auto stale = identity();
  stale.source_size += 1;
  report = cache_verify(cache_, stale);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("stale"), std::string::npos);

  EXPECT_FALSE(cache_stat(dir_ / "missing.spc").has_value());
  EXPECT_FALSE(cache_verify(dir_ / "missing.spc").ok);
}

TEST_F(ProbeCacheTest, AbandonLeavesNoFiles) {
  {
    ProbeCacheWriter writer(cache_, identity());
    writer.append(sample_batch(4, 4));
    // no commit: destructor abandons
  }
  EXPECT_FALSE(fs::exists(cache_));
  EXPECT_FALSE(fs::exists(cache_.native() + ".tmp"));
}

TEST_F(ProbeCacheTest, MissingCacheAndNonRegularSourcesHandled) {
  EXPECT_FALSE(ProbeCacheReader::open(cache_, identity()).has_value());
  EXPECT_FALSE(cache_identity(dir_).has_value());               // a directory
  EXPECT_FALSE(cache_identity(dir_ / "missing.pcap").has_value());
}

}  // namespace
}  // namespace synscan::core
