#include "core/parallel.h"

#include <gtest/gtest.h>

#include <map>

#include "simgen/generator.h"
#include "test_support.h"

namespace synscan::core {
namespace {

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {{23, 0}});
  return telescope;
}

std::vector<net::RawFrame> workload() {
  static const std::vector<net::RawFrame> frames = [] {
    simgen::YearConfig config;
    config.window_days = 1;
    config.seed = 4242;
    config.port_table = {{80, 60}, {22, 40}};
    config.noise_sources = 40;
    config.backscatter_fraction = 0.05;
    simgen::GroupSpec group;
    group.name = "parallel-workload";
    group.tool = simgen::WireTool::kZmap;
    group.pool = enrich::ScannerType::kHosting;
    group.sources = 6;
    group.campaigns = 12;
    group.hits_median = 300;
    group.hits_sigma = 1.2;
    group.pps_median = 500000;
    group.pps_sigma = 1.2;
    config.groups.push_back(group);

    std::vector<net::RawFrame> out;
    simgen::TrafficGenerator generator(config, test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) { out.push_back(f); });
    return out;
  }();
  return frames;
}

/// Summary of campaigns that must be invariant across worker counts.
std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> summarize(
    const std::vector<Campaign>& campaigns) {
  std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> out;
  for (const auto& campaign : campaigns) {
    out.emplace(campaign.source.value(),
                std::make_pair(campaign.packets, campaign.distinct_destinations));
  }
  return out;
}

TEST(ParallelAnalyzer, MatchesSerialPipeline) {
  const auto frames = workload();

  Pipeline serial(test_telescope());
  for (const auto& frame : frames) serial.feed_frame(frame);
  const auto serial_result = serial.finish();

  ParallelAnalyzer parallel(test_telescope(), 4);
  for (const auto& frame : frames) parallel.feed_frame(frame);
  const auto parallel_result = parallel.finish();

  EXPECT_EQ(parallel_result.sensor.scan_probes, serial_result.sensor.scan_probes);
  EXPECT_EQ(parallel_result.sensor.backscatter, serial_result.sensor.backscatter);
  EXPECT_EQ(parallel_result.sensor.ingress_blocked,
            serial_result.sensor.ingress_blocked);
  EXPECT_EQ(parallel_result.tracker.probes, serial_result.tracker.probes);
  EXPECT_EQ(parallel_result.tracker.subthreshold_flows,
            serial_result.tracker.subthreshold_flows);
  ASSERT_EQ(parallel_result.campaigns.size(), serial_result.campaigns.size());
  EXPECT_EQ(summarize(parallel_result.campaigns), summarize(serial_result.campaigns));
}

TEST(ParallelAnalyzer, DeterministicAcrossWorkerCounts) {
  const auto frames = workload();
  std::vector<PipelineResult> results;
  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    ParallelAnalyzer analyzer(test_telescope(), workers);
    for (const auto& frame : frames) analyzer.feed_frame(frame);
    results.push_back(analyzer.finish());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(summarize(results[i].campaigns), summarize(results[0].campaigns));
    EXPECT_EQ(results[i].sensor.scan_probes, results[0].sensor.scan_probes);
    // Merged order is deterministic too.
    ASSERT_EQ(results[i].campaigns.size(), results[0].campaigns.size());
    for (std::size_t c = 0; c < results[i].campaigns.size(); ++c) {
      EXPECT_EQ(results[i].campaigns[c].source, results[0].campaigns[c].source);
      EXPECT_EQ(results[i].campaigns[c].id, c + 1);
    }
  }
}

TEST(ParallelAnalyzer, UndecodableFramesCountedAsMalformed) {
  ParallelAnalyzer analyzer(test_telescope(), 2);
  analyzer.feed_frame({1, {0xde, 0xad}});
  analyzer.feed_frame({2, {}});
  const auto result = analyzer.finish();
  EXPECT_EQ(result.sensor.malformed, 2u);
}

TEST(ParallelAnalyzer, RejectsZeroWorkers) {
  EXPECT_THROW(ParallelAnalyzer(test_telescope(), 0), std::invalid_argument);
}

TEST(ParallelAnalyzer, FinishTwiceThrows) {
  ParallelAnalyzer analyzer(test_telescope(), 2);
  (void)analyzer.finish();
  EXPECT_THROW((void)analyzer.finish(), std::logic_error);
}

TEST(ParallelAnalyzer, DestructorWithoutFinishIsClean) {
  const auto frames = workload();
  ParallelAnalyzer analyzer(test_telescope(), 3);
  for (std::size_t i = 0; i < std::min<std::size_t>(500, frames.size()); ++i) {
    analyzer.feed_frame(frames[i]);
  }
  // No finish(): the destructor must join without deadlock or leak.
}

}  // namespace
}  // namespace synscan::core
