# Smoke: simulate a tiny capture, then run every read-only subcommand on it.
file(MAKE_DIRECTORY ${WORKDIR})
set(CAPTURE ${WORKDIR}/smoke.pcap)

execute_process(
  COMMAND ${SYNSCAN} simulate --year=2020 --scale=128 --days=1 --out=${CAPTURE}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "wrote [0-9]+ frames")
  message(FATAL_ERROR "simulate output unexpected: ${out}")
endif()

foreach(cmd info analyze fingerprint)
  execute_process(
    COMMAND ${SYNSCAN} ${cmd} ${CAPTURE}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${cmd} failed (${rc}): ${out}${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${SYNSCAN} analyze ${CAPTURE} --top=3
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT out MATCHES "scanner types")
  message(FATAL_ERROR "analyze output missing sections: ${out}")
endif()

# Observability: --metrics=<file> writes a run report with the documented
# schema and the stage/counter sections (docs/OBSERVABILITY.md).
set(METRICS ${WORKDIR}/metrics.json)
execute_process(
  COMMAND ${SYNSCAN} analyze ${CAPTURE} --metrics=${METRICS}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze --metrics failed (${rc}): ${out}${err}")
endif()
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "analyze --metrics did not write ${METRICS}")
endif()
file(READ ${METRICS} metrics_json)
foreach(needle
    "\"schema\":\"synscan.run_report/1\""
    "\"counters\""
    "\"timings\""
    "sensor.scan_probes"
    "tracker.probes"
    "parallel.items")
  if(NOT metrics_json MATCHES "${needle}")
    message(FATAL_ERROR "run report missing ${needle}: ${metrics_json}")
  endif()
endforeach()

# Bare --metrics prints the ASCII table instead.
execute_process(
  COMMAND ${SYNSCAN} analyze ${CAPTURE} --metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze --metrics (table) failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "-- run report --")
  message(FATAL_ERROR "analyze --metrics table output missing: ${out}")
endif()
