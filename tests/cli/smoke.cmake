# Smoke: simulate a tiny capture, then run every read-only subcommand on it.
file(MAKE_DIRECTORY ${WORKDIR})
set(CAPTURE ${WORKDIR}/smoke.pcap)

execute_process(
  COMMAND ${SYNSCAN} simulate --year=2020 --scale=128 --days=1 --out=${CAPTURE}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "wrote [0-9]+ frames")
  message(FATAL_ERROR "simulate output unexpected: ${out}")
endif()

foreach(cmd info analyze fingerprint)
  execute_process(
    COMMAND ${SYNSCAN} ${cmd} ${CAPTURE}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${cmd} failed (${rc}): ${out}${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${SYNSCAN} analyze ${CAPTURE} --top=3
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT out MATCHES "scanner types")
  message(FATAL_ERROR "analyze output missing sections: ${out}")
endif()
