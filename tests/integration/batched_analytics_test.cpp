// Differential tests for the batch-native analytics path: every
// column-direct fast path introduced by the ProbeBatch end-to-end
// refactor — batched observers, the flat fingerprint evidence table,
// the interval-indexed registry, batch-slice sharding in the parallel
// analyzer, and the buffered JSON writer — must be bit-identical to its
// per-probe (or linear-scan) reference on a mixed capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "core/analysis_geo.h"
#include "core/analysis_types.h"
#include "core/daily_series.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "core/volatility.h"
#include "enrich/registry.h"
#include "fingerprint/evidence_table.h"
#include "report/json.h"
#include "simgen/generator.h"
#include "telescope/probe_batch.h"
#include "test_support.h"

namespace synscan {
namespace {

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}},
      {{23, 0}});  // telnet blocked from the start
  return telescope;
}

/// A mixed window: three tool groups across scanner pools, plus noise
/// sources and backscatter, so batches interleave sources and every
/// matcher, registry pool and observer sees real traffic.
simgen::YearConfig capture_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 2;
  config.seed = 6060;
  config.port_table = {{80, 40}, {23, 20}, {443, 20}, {8080, 20}};
  config.noise_sources = 60;
  config.backscatter_fraction = 0.1;

  const auto add_group = [&](const char* name, simgen::WireTool tool,
                             enrich::ScannerType pool, int sources, int campaigns) {
    simgen::GroupSpec group;
    group.name = name;
    group.tool = tool;
    group.pool = pool;
    group.sources = sources;
    group.campaigns = campaigns;
    group.hits_median = 250;
    group.hits_sigma = 1.2;
    group.pps_median = 400000;
    group.pps_sigma = 1.2;
    config.groups.push_back(group);
  };
  add_group("zmap-hosting", simgen::WireTool::kZmap, enrich::ScannerType::kHosting, 5, 8);
  add_group("masscan-res", simgen::WireTool::kMasscan, enrich::ScannerType::kResidential,
            4, 6);
  add_group("mirai-res", simgen::WireTool::kMirai, enrich::ScannerType::kResidential, 6,
            6);
  return config;
}

/// The window's scan probes, already sensed, as recycled-style batches
/// (fixed row budget, cleared and refilled like the ingest path).
std::vector<telescope::ProbeBatch> probe_batches() {
  static const std::vector<telescope::ProbeBatch> batches = [] {
    constexpr std::size_t kRows = 1024;
    std::vector<telescope::ProbeBatch> out;
    telescope::Sensor sensor(test_telescope());
    telescope::ProbeBatch batch;
    simgen::TrafficGenerator generator(capture_config(), test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& frame) {
      telescope::ScanProbe probe;
      if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
        batch.push_back(probe);
        if (batch.size() >= kRows) {
          out.push_back(batch);
          batch.clear();
        }
      }
    });
    if (!batch.empty()) out.push_back(batch);
    return out;
  }();
  return batches;
}

std::vector<std::uint32_t> identity_rows(std::size_t n) {
  std::vector<std::uint32_t> rows(n);
  for (std::uint32_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

/// Feeds every batch through `observer` using the column-direct
/// `observe_batch` overload.
void feed_batched(core::ProbeObserver& observer) {
  for (const auto& batch : probe_batches()) {
    const auto rows = identity_rows(batch.size());
    observer.observe_batch(batch, rows);
  }
}

/// Feeds every batch through `observer` row by row — the per-probe
/// reference the batched overloads are measured against.
void feed_reference(core::ProbeObserver& observer) {
  for (const auto& batch : probe_batches()) {
    for (std::size_t i = 0; i < batch.size(); ++i) observer.on_probe(batch.get(i));
  }
}

void expect_same_port_rows(const std::vector<core::PortCount>& got,
                           const std::vector<core::PortCount>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].port, want[i].port) << "row " << i;
    EXPECT_EQ(got[i].count, want[i].count) << "row " << i;
    EXPECT_EQ(got[i].share, want[i].share) << "row " << i;
  }
}

TEST(BatchedObservers, PortTallyMatchesPerProbeReference) {
  core::PortTally batched;
  core::PortTally reference;
  feed_batched(batched);
  feed_reference(reference);

  ASSERT_GT(reference.total_packets(), 0u);
  EXPECT_EQ(batched.total_packets(), reference.total_packets());
  EXPECT_EQ(batched.total_sources(), reference.total_sources());
  expect_same_port_rows(batched.top_ports_by_packets(100),
                        reference.top_ports_by_packets(100));
  expect_same_port_rows(batched.top_ports_by_sources(100),
                        reference.top_ports_by_sources(100));
  EXPECT_EQ(batched.ports_with_at_least(2), reference.ports_with_at_least(2));
  EXPECT_EQ(batched.privileged_port_coverage(), reference.privileged_port_coverage());

  auto got_sample = batched.ports_per_source_sample();
  auto want_sample = reference.ports_per_source_sample();
  std::sort(got_sample.begin(), got_sample.end());
  std::sort(want_sample.begin(), want_sample.end());
  EXPECT_EQ(got_sample, want_sample);
}

TEST(BatchedObservers, TypeTallyMatchesPerProbeReference) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::TypeTally batched(registry);
  core::TypeTally reference(registry);
  feed_batched(batched);
  feed_reference(reference);

  EXPECT_EQ(batched.total_packets(), reference.total_packets());
  EXPECT_EQ(batched.total_sources(), reference.total_sources());
  for (const auto type : enrich::kAllScannerTypes) {
    EXPECT_EQ(batched.packets(type), reference.packets(type))
        << enrich::to_string(type);
    EXPECT_EQ(batched.sources(type), reference.sources(type))
        << enrich::to_string(type);
  }
  for (const auto port : reference.top_ports(10)) {
    EXPECT_EQ(batched.port_type_mix(port), reference.port_type_mix(port))
        << "port " << port;
  }
}

TEST(BatchedObservers, GeoTallyMatchesPerProbeReference) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::GeoTally batched(registry);
  core::GeoTally reference(registry);
  feed_batched(batched);
  feed_reference(reference);

  EXPECT_EQ(batched.total_packets(), reference.total_packets());
  const auto got = batched.top_countries(100);
  const auto want = reference.top_countries(100);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].country, want[i].country) << "row " << i;
    EXPECT_EQ(got[i].packets, want[i].packets) << "row " << i;
    EXPECT_EQ(got[i].share, want[i].share) << "row " << i;
  }
  for (const std::uint16_t port : {80, 23, 443, 8080}) {
    const auto mix_got = batched.port_country_mix(port, 20);
    const auto mix_want = reference.port_country_mix(port, 20);
    ASSERT_EQ(mix_got.size(), mix_want.size()) << "port " << port;
    for (std::size_t i = 0; i < mix_want.size(); ++i) {
      EXPECT_EQ(mix_got[i].country, mix_want[i].country) << "port " << port;
      EXPECT_EQ(mix_got[i].packets, mix_want[i].packets) << "port " << port;
    }
  }
}

TEST(BatchedObservers, DailySeriesMatchesPerProbeReference) {
  const net::TimeUs origin = probe_batches().front().timestamp_us.front();
  core::DailyPortSeries batched(origin);
  core::DailyPortSeries reference(origin);
  feed_batched(batched);
  feed_reference(reference);

  ASSERT_EQ(batched.days(), reference.days());
  EXPECT_EQ(batched.totals(), reference.totals());
  for (const std::uint16_t port : {80, 23, 443, 8080}) {
    EXPECT_EQ(batched.series(port), reference.series(port)) << "port " << port;
  }
}

TEST(BatchedObservers, VolatilityMatchesPerProbeReference) {
  const net::TimeUs origin = probe_batches().front().timestamp_us.front();
  core::VolatilityTracker batched(origin, net::kMicrosPerDay);
  core::VolatilityTracker reference(origin, net::kMicrosPerDay);
  feed_batched(batched);
  feed_reference(reference);

  const auto got = batched.result();
  const auto want = reference.result();
  EXPECT_EQ(got.netblocks, want.netblocks);
  EXPECT_EQ(got.weeks, want.weeks);
  ASSERT_EQ(got.packet_change.size(), want.packet_change.size());
  EXPECT_TRUE(std::equal(got.packet_change.sorted().begin(),
                         got.packet_change.sorted().end(),
                         want.packet_change.sorted().begin()));
  ASSERT_EQ(got.source_change.size(), want.source_change.size());
  EXPECT_TRUE(std::equal(got.source_change.sorted().begin(),
                         got.source_change.sorted().end(),
                         want.source_change.sorted().begin()));
}

TEST(EvidenceTableDifferential, MatchesMapReference) {
  fingerprint::EvidenceTable table;
  std::map<std::uint32_t, fingerprint::ToolEvidence> reference;
  for (const auto& batch : probe_batches()) {
    table.observe_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto probe = batch.get(i);
      reference[probe.source.value()].observe(probe);
    }
  }

  ASSERT_GT(reference.size(), 0u);
  ASSERT_EQ(table.sources(), reference.size());
  // sorted_entries() must reproduce the std::map's ascending-source
  // iteration (the CLI report order), entry for entry.
  const auto entries = table.sorted_entries();
  ASSERT_EQ(entries.size(), reference.size());
  std::size_t index = 0;
  for (const auto& [source, want] : reference) {
    const auto& [got_source, got] = entries[index++];
    ASSERT_EQ(got_source, source);
    EXPECT_EQ(got->probes(), want.probes());
    EXPECT_EQ(got->verdict(), want.verdict());
    for (const auto tool : fingerprint::kAllTools) {
      EXPECT_EQ(got->matches(tool), want.matches(tool))
          << net::Ipv4Address(source).to_string() << " "
          << fingerprint::to_string(tool);
    }
    EXPECT_EQ(table.find(source), got);
  }
  // A source the capture cannot contain (multicast space) maps to null.
  ASSERT_EQ(reference.count(0xeeeeeeeeu), 0u);
  EXPECT_EQ(table.find(0xeeeeeeeeu), nullptr);
}

TEST(IntervalRegistryDifferential, MatchesLinearLongestPrefixScan) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  const auto records = registry.records();
  ASSERT_GT(records.size(), 0u);

  // Reference: linear scan keeping the longest matching prefix (first
  // record wins ties, mirroring the old per-length emplace semantics).
  const auto linear = [&](net::Ipv4Address addr) -> const enrich::PrefixRecord* {
    const enrich::PrefixRecord* best = nullptr;
    for (const auto& record : records) {
      if (!record.prefix.contains(addr)) continue;
      if (best == nullptr || record.prefix.length() > best->prefix.length()) {
        best = &record;
      }
    }
    return best;
  };

  std::vector<std::uint32_t> probes;
  for (const auto& record : records) {
    const auto base = record.prefix.base().value();
    const auto last =
        base + static_cast<std::uint32_t>(record.prefix.size() - 1);
    probes.push_back(base);
    probes.push_back(last);
    if (base > 0) probes.push_back(base - 1);
    if (last < 0xffffffffu) probes.push_back(last + 1);
    probes.push_back(base + static_cast<std::uint32_t>(record.prefix.size() / 2));
  }
  // A deterministic sweep of the whole space (prime stride).
  for (std::uint64_t addr = 0; addr <= 0xffffffffull; addr += 16777259) {
    probes.push_back(static_cast<std::uint32_t>(addr));
  }

  for (const auto value : probes) {
    const net::Ipv4Address addr(value);
    EXPECT_EQ(registry.lookup(addr), linear(addr)) << addr.to_string();
  }
}

/// JSON reports from the batched pipeline must be byte-identical to the
/// per-probe reference: same campaigns, same order, same formatting.
TEST(BatchedPipelineDifferential, SerialJsonMatchesPerProbeReference) {
  const auto& registry = enrich::InternetRegistry::synthetic_default();

  core::Pipeline batched(test_telescope());
  core::PortTally batched_ports;
  core::TypeTally batched_types(registry);
  core::GeoTally batched_geo(registry);
  batched.add_observer(batched_ports);
  batched.add_observer(batched_types);
  batched.add_observer(batched_geo);

  core::Pipeline reference(test_telescope());
  core::PortTally reference_ports;
  core::TypeTally reference_types(registry);
  core::GeoTally reference_geo(registry);
  reference.add_observer(reference_ports);
  reference.add_observer(reference_types);
  reference.add_observer(reference_geo);

  for (const auto& batch : probe_batches()) {
    batched.feed_probes(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) reference.feed_probe(batch.get(i));
  }
  const auto batched_result = batched.finish();
  const auto reference_result = reference.finish();
  ASSERT_GT(reference_result.campaigns.size(), 0u);

  const auto to_json = [](const core::PipelineResult& result) {
    std::ostringstream out;
    report::write_counters_json(out, result);
    out << '\n';
    report::write_campaigns_jsonl(out, result.campaigns);
    return out.str();
  };
  EXPECT_EQ(to_json(batched_result), to_json(reference_result));
  EXPECT_EQ(batched_ports.total_packets(), reference_ports.total_packets());
  EXPECT_EQ(batched_types.total_sources(), reference_types.total_sources());
  EXPECT_EQ(batched_geo.total_packets(), reference_geo.total_packets());
}

/// Batch-slice sharding: the parallel analyzer fed whole batches must
/// reproduce the serial batched pipeline for any worker count, and its
/// deterministic merge must make JSON reports worker-count-invariant.
TEST(BatchedPipelineDifferential, WorkerSliceShardingMatchesSerial) {
  core::Pipeline serial(test_telescope());
  for (const auto& batch : probe_batches()) serial.feed_probes(batch);
  const auto serial_result = serial.finish();
  ASSERT_GT(serial_result.campaigns.size(), 0u);

  const auto summarize = [](const std::vector<core::Campaign>& campaigns) {
    std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> out;
    for (const auto& campaign : campaigns) {
      out.emplace(campaign.source.value(),
                  std::make_pair(campaign.packets, campaign.distinct_destinations));
    }
    return out;
  };
  const auto jsonl = [](const core::PipelineResult& result) {
    std::ostringstream out;
    report::write_campaigns_jsonl(out, result.campaigns);
    return out.str();
  };

  std::vector<std::string> parallel_json;
  for (const std::size_t workers : {2u, 3u, 4u}) {
    core::ParallelAnalyzer analyzer(test_telescope(), workers);
    for (const auto& batch : probe_batches()) analyzer.feed_probes(batch);
    const auto result = analyzer.finish();

    EXPECT_EQ(result.tracker.probes, serial_result.tracker.probes);
    EXPECT_EQ(result.tracker.subthreshold_flows,
              serial_result.tracker.subthreshold_flows);
    EXPECT_EQ(result.tracker.subthreshold_packets,
              serial_result.tracker.subthreshold_packets);
    ASSERT_EQ(result.campaigns.size(), serial_result.campaigns.size());
    EXPECT_EQ(summarize(result.campaigns), summarize(serial_result.campaigns));
    parallel_json.push_back(jsonl(result));
  }
  // The merge re-issues campaign ids deterministically, so the JSON
  // report is byte-identical across worker counts.
  EXPECT_EQ(parallel_json[0], parallel_json[1]);
  EXPECT_EQ(parallel_json[0], parallel_json[2]);
}

}  // namespace
}  // namespace synscan
