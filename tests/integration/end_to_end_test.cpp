// End-to-end: calibrated yearly ecosystems through the full pipeline,
// asserting the paper's qualitative shapes (who dominates, what is
// targeted) rather than absolute numbers.
#include <gtest/gtest.h>

#include "core/analysis_campaigns.h"
#include "core/analysis_summary.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "enrich/registry.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"

namespace synscan {
namespace {

struct YearRun {
  core::PipelineResult result;
  core::PortTally tally;
  simgen::GeneratorStats generated;
  simgen::YearConfig config;
};

// Heavier scale divisor keeps the end-to-end suite fast; shapes survive.
constexpr double kTestScale = 8.0;

const YearRun& run_year(int year) {
  static std::map<int, YearRun> cache;
  auto it = cache.find(year);
  if (it != cache.end()) return it->second;

  auto& run = cache[year];
  run.config = simgen::year_config(year, kTestScale);
  const auto& telescope = telescope::Telescope::paper_default();
  core::Pipeline pipeline(telescope);
  pipeline.add_observer(run.tally);
  simgen::TrafficGenerator generator(run.config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  run.generated = generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  run.result = pipeline.finish();
  return run;
}

TEST(EndToEnd, TrafficGrowsAcrossTheDecade) {
  const auto& y2015 = run_year(2015);
  const auto& y2020 = run_year(2020);
  const double rate_2015 = static_cast<double>(y2015.tally.total_packets()) /
                           y2015.config.window_days;
  const double rate_2020 = static_cast<double>(y2020.tally.total_packets()) /
                           y2020.config.window_days;
  // The paper reports ~26x between 2015 and 2020. At the test suite's
  // extra 1/8 scale the fixed minimums (campaign qualification floor,
  // noise chatter) inflate the small 2015 window, compressing the ratio;
  // the full-scale benches recover ~21x. Demand at least 8x here.
  EXPECT_GT(rate_2020, 8.0 * rate_2015);
}

TEST(EndToEnd, NmapDominatesKnownTools2015) {
  const auto& run = run_year(2015);
  const auto shares = core::tool_shares(run.result.campaigns);
  const auto nmap = shares.by_scans.share(fingerprint::Tool::kNmap);
  EXPECT_GT(nmap, 0.2);
  EXPECT_GT(nmap, shares.by_scans.share(fingerprint::Tool::kMasscan));
  EXPECT_GT(nmap, shares.by_scans.share(fingerprint::Tool::kZmap));
  EXPECT_EQ(shares.by_scans.share(fingerprint::Tool::kMirai), 0.0);
}

TEST(EndToEnd, MiraiEraIn2017) {
  const auto& run = run_year(2017);
  const auto shares = core::tool_shares(run.result.campaigns);
  const auto mirai = shares.by_scans.share(fingerprint::Tool::kMirai);
  EXPECT_GT(mirai, 0.35);  // paper: 46.5%
  // IoT-era ports dominate the source ranking.
  const auto top_sources = run.tally.top_ports_by_sources(5);
  ASSERT_FALSE(top_sources.empty());
  bool iot_port_on_top = false;
  for (const auto& row : top_sources) {
    if (row.port == 2323 || row.port == 7545 || row.port == 5358) iot_port_on_top = true;
  }
  EXPECT_TRUE(iot_port_on_top);
}

TEST(EndToEnd, ZmapSurgeIn2024) {
  const auto& run = run_year(2024);
  const auto shares = core::tool_shares(run.result.campaigns);
  EXPECT_GT(shares.by_scans.share(fingerprint::Tool::kZmap), 0.45);  // paper: 59%
  EXPECT_LT(shares.by_scans.share(fingerprint::Tool::kNmap), 0.01);
  // §6: under 40% of 2024 *traffic* is attributable to the four tools.
  EXPECT_LT(shares.by_packets.known_share(), 0.6);
}

TEST(EndToEnd, MasscanCarriesTheTrafficAround2022) {
  const auto& run = run_year(2022);
  const auto shares = core::tool_shares(run.result.campaigns);
  // Few scans, most packets (paper: 9.9% of scans, 81% of packets).
  EXPECT_LT(shares.by_scans.share(fingerprint::Tool::kMasscan), 0.3);
  EXPECT_GT(shares.by_packets.share(fingerprint::Tool::kMasscan), 0.35);
}

TEST(EndToEnd, CampaignFragmentationAfter2022) {
  const auto& y2020 = run_year(2020);
  const auto& y2024 = run_year(2024);
  const double scans_rate_2020 =
      static_cast<double>(y2020.result.campaigns.size()) / y2020.config.window_days;
  const double scans_rate_2024 =
      static_cast<double>(y2024.result.campaigns.size()) / y2024.config.window_days;
  // Scans/day grow much faster than packets/day (paper: scans x5.9,
  // packets x1.2 between 2020 and 2024).
  const double pkts_rate_2020 =
      static_cast<double>(y2020.tally.total_packets()) / y2020.config.window_days;
  const double pkts_rate_2024 =
      static_cast<double>(y2024.tally.total_packets()) / y2024.config.window_days;
  EXPECT_GT(scans_rate_2024 / scans_rate_2020, 2.0 * pkts_rate_2024 / pkts_rate_2020);
}

TEST(EndToEnd, PortSpreadIncreasesOverTime) {
  const auto& y2015 = run_year(2015);
  const auto& y2024 = run_year(2024);
  // Share of the single most-scanned port, by campaigns: concentrated in
  // 2015, flat by 2024 (Table 1: 23.4% -> <1% at full scale).
  const auto top_2015 = core::top_ports_by_scans(y2015.result.campaigns, 1);
  const auto top_2024 = core::top_ports_by_scans(y2024.result.campaigns, 1);
  ASSERT_FALSE(top_2015.empty());
  ASSERT_FALSE(top_2024.empty());
  EXPECT_GT(top_2015[0].share, 2.0 * top_2024[0].share);
}

TEST(EndToEnd, IngressBlocksTelnetFrom2017) {
  EXPECT_EQ(run_year(2016).result.sensor.ingress_blocked, 0u);
  EXPECT_EQ(run_year(2016).tally.packets_on_port(445), 0u);
  // From 2017 the generator still emits 23/tcp (Mirai), but the sensor
  // drops it.
  EXPECT_GT(run_year(2017).result.sensor.ingress_blocked, 0u);
  EXPECT_EQ(run_year(2017).tally.packets_on_port(23), 0u);
}

TEST(EndToEnd, DetectedCampaignsMatchPlansApproximately) {
  const auto& run = run_year(2019);
  const auto planned = run.generated.planned_campaigns;
  const auto detected = run.result.campaigns.size();
  // Sub-threshold noise plans are excluded from planned_campaigns, so
  // detection should recover most planned campaigns (some split or merge
  // at window edges).
  EXPECT_GT(static_cast<double>(detected), 0.75 * static_cast<double>(planned));
  EXPECT_LT(static_cast<double>(detected), 1.35 * static_cast<double>(planned));
}

TEST(EndToEnd, SourcesPeakInMiraiEraThenDecline) {
  const auto sources_per_day = [](const YearRun& run) {
    return static_cast<double>(run.tally.total_sources()) / run.config.window_days;
  };
  EXPECT_GT(sources_per_day(run_year(2017)), sources_per_day(run_year(2015)));
  EXPECT_GT(sources_per_day(run_year(2017)), sources_per_day(run_year(2024)));
}

}  // namespace
}  // namespace synscan
