// Differential test for the batched ingest front-end: every ingest path
// (mmap, stream fallback, warm probe cache, parallel feeder) must produce
// the exact sensor counters, tracker counters and campaigns that the
// original per-frame `Pipeline::feed_frame` path produces.
#include "core/ingest.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "net/endian.h"
#include "pcap/pcap.h"
#include "simgen/generator.h"
#include "simgen/rng.h"
#include "telescope/simd.h"
#include "test_support.h"

namespace synscan {
namespace {

namespace fs = std::filesystem;

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}},
      {{23, 0}});  // telnet blocked from the start
  return telescope;
}

simgen::YearConfig capture_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 20240;
  config.port_table = {{80, 60}, {23, 20}, {443, 20}};
  config.noise_sources = 25;
  config.backscatter_fraction = 0.1;

  simgen::GroupSpec group;
  group.name = "ingest-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 4;
  group.campaigns = 4;
  group.hits_median = 250;
  group.hits_sigma = 1.1;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);
  return config;
}

void expect_same_sensor(const telescope::SensorCounters& got,
                        const telescope::SensorCounters& want) {
  EXPECT_EQ(got.scan_probes, want.scan_probes);
  EXPECT_EQ(got.backscatter, want.backscatter);
  EXPECT_EQ(got.xmas_or_null, want.xmas_or_null);
  EXPECT_EQ(got.other_tcp, want.other_tcp);
  EXPECT_EQ(got.udp, want.udp);
  EXPECT_EQ(got.icmp, want.icmp);
  EXPECT_EQ(got.not_monitored, want.not_monitored);
  EXPECT_EQ(got.ingress_blocked, want.ingress_blocked);
  EXPECT_EQ(got.malformed, want.malformed);
  EXPECT_EQ(got.spoofed_source, want.spoofed_source);
}

void expect_same_tracking(const core::PipelineResult& got,
                          const core::PipelineResult& want) {
  EXPECT_EQ(got.tracker.probes, want.tracker.probes);
  EXPECT_EQ(got.tracker.campaigns, want.tracker.campaigns);
  EXPECT_EQ(got.tracker.subthreshold_flows, want.tracker.subthreshold_flows);
  EXPECT_EQ(got.tracker.subthreshold_packets, want.tracker.subthreshold_packets);
  EXPECT_EQ(got.tracker.expired_flows, want.tracker.expired_flows);
  EXPECT_EQ(got.tracker.sweeps, want.tracker.sweeps);

  ASSERT_EQ(got.campaigns.size(), want.campaigns.size());
  for (std::size_t i = 0; i < want.campaigns.size(); ++i) {
    EXPECT_EQ(got.campaigns[i].source, want.campaigns[i].source) << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].packets, want.campaigns[i].packets) << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].distinct_destinations,
              want.campaigns[i].distinct_destinations)
        << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].first_seen_us, want.campaigns[i].first_seen_us)
        << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].last_seen_us, want.campaigns[i].last_seen_us)
        << "campaign " << i;
  }
}

/// Per-source campaign summary: (packets, distinct destinations). The
/// parallel merge re-issues ids, so cross-driver comparisons key on the
/// source address rather than position.
std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> summarize(
    const std::vector<core::Campaign>& campaigns) {
  std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> out;
  for (const auto& campaign : campaigns) {
    out.emplace(campaign.source.value(),
                std::make_pair(campaign.packets, campaign.distinct_destinations));
  }
  return out;
}

class IngestDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_ingest_differential";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    capture_ = dir_ / "window.pcap";

    auto writer = pcap::Writer::create(capture_);
    simgen::TrafficGenerator generator(capture_config(), test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) { writer.write(f); });
    writer.flush();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The original path: pcap::Reader record-at-a-time into feed_frame.
  [[nodiscard]] core::PipelineResult reference_result() const {
    core::Pipeline pipeline(test_telescope());
    auto reader = pcap::Reader::open(capture_);
    net::RawFrame frame;
    while (reader.next(frame) == pcap::ReadStatus::kOk) pipeline.feed_frame(frame);
    return pipeline.finish();
  }

  /// Serial ingest through the given options; also returns the
  /// IngestResult so callers can assert which path ran.
  [[nodiscard]] std::pair<core::PipelineResult, core::IngestResult> ingest_result(
      const core::IngestOptions& options) const {
    core::Pipeline pipeline(test_telescope());
    const auto ingest = core::ingest_capture(
        capture_, test_telescope(), options,
        [&](const telescope::ProbeBatch& batch) { pipeline.feed_probes(batch); });
    pipeline.absorb_sensor_counters(ingest.sensor);
    return {pipeline.finish(), ingest};
  }

  fs::path dir_;
  fs::path capture_;
};

TEST_F(IngestDifferential, MmapStreamAndCachePathsMatchFrameByFrameReference) {
  const auto reference = reference_result();
  ASSERT_GT(reference.sensor.scan_probes, 0u);
  ASSERT_GT(reference.campaigns.size(), 0u);

  core::IngestOptions mmap_options;
  mmap_options.use_cache = false;
  const auto [mapped, mapped_ingest] = ingest_result(mmap_options);
  EXPECT_FALSE(mapped_ingest.from_cache);
  EXPECT_GT(mapped_ingest.batches, 0u);
  expect_same_sensor(mapped.sensor, reference.sensor);
  expect_same_tracking(mapped, reference);

  core::IngestOptions stream_options;
  stream_options.use_cache = false;
  stream_options.use_mmap = false;
  const auto [streamed, streamed_ingest] = ingest_result(stream_options);
  EXPECT_FALSE(streamed_ingest.mapped);
  expect_same_sensor(streamed.sensor, reference.sensor);
  expect_same_tracking(streamed, reference);

  // Cold cached run writes the .spc; warm run must come from it and
  // still match bit for bit.
  core::IngestOptions cached_options;
  const auto [cold, cold_ingest] = ingest_result(cached_options);
  EXPECT_FALSE(cold_ingest.from_cache);
  EXPECT_TRUE(fs::exists(capture_.native() + ".spc"));
  expect_same_sensor(cold.sensor, reference.sensor);
  expect_same_tracking(cold, reference);

  const auto [warm, warm_ingest] = ingest_result(cached_options);
  EXPECT_TRUE(warm_ingest.from_cache);
  EXPECT_EQ(warm_ingest.frames, cold_ingest.frames);
  EXPECT_EQ(warm_ingest.status, cold_ingest.status);
  expect_same_sensor(warm.sensor, reference.sensor);
  expect_same_tracking(warm, reference);

  // Touching the capture invalidates the cache: the next run re-decodes.
  {
    std::ofstream touch(capture_, std::ios::binary | std::ios::app);
    touch.put('\0');
  }
  const auto [stale, stale_ingest] = ingest_result(cached_options);
  EXPECT_FALSE(stale_ingest.from_cache);
  (void)stale;
}

TEST_F(IngestDifferential, ParallelProbeFeedMatchesSerialReference) {
  const auto reference = reference_result();

  core::IngestOptions options;
  options.use_cache = false;
  core::ParallelAnalyzer analyzer(test_telescope(), 3);
  const auto ingest = core::ingest_capture(
      capture_, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { analyzer.feed_probes(batch); });
  analyzer.absorb_sensor_counters(ingest.sensor);
  const auto parallel = analyzer.finish();

  expect_same_sensor(parallel.sensor, reference.sensor);
  EXPECT_EQ(parallel.tracker.probes, reference.tracker.probes);
  EXPECT_EQ(parallel.tracker.campaigns, reference.tracker.campaigns);
  EXPECT_EQ(summarize(parallel.campaigns), summarize(reference.campaigns));
  // The merge re-issues ids 1..n in its deterministic order (which is
  // sorted, unlike the serial driver's flow-close order).
  ASSERT_EQ(parallel.campaigns.size(), reference.campaigns.size());
  for (std::size_t i = 0; i < parallel.campaigns.size(); ++i) {
    EXPECT_EQ(parallel.campaigns[i].id, i + 1);
  }
}

/// Hand-crafted single-probe captures in the three classic pcap on-disk
/// dialects (LE microseconds, LE nanoseconds, BE microseconds): the
/// batched ingest must read all of them exactly like pcap::Reader.
class IngestDialects : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_ingest_dialects";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// One SYN to the dark net, timestamped 3.000005s.
  [[nodiscard]] static std::vector<std::uint8_t> probe_frame() {
    return testing::syn_frame(net::Ipv4Address::from_octets(93, 184, 216, 34),
                              net::Ipv4Address::from_octets(198, 51, 0, 9), 80);
  }

  /// Writes a classic pcap by hand so the magic/byte order/sub-second
  /// unit are exactly what the test names.
  [[nodiscard]] fs::path write_capture(const char* name, std::uint32_t magic,
                                       bool big_endian, std::uint32_t subsec) {
    const auto path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    const auto u16 = [&](std::uint16_t v) {
      std::uint8_t b[2];
      big_endian ? net::store_be16(b, v) : net::store_le16(b, v);
      out.write(reinterpret_cast<const char*>(b), 2);
    };
    const auto u32 = [&](std::uint32_t v) {
      std::uint8_t b[4];
      big_endian ? net::store_be32(b, v) : net::store_le32(b, v);
      out.write(reinterpret_cast<const char*>(b), 4);
    };
    u32(magic);
    u16(2);
    u16(4);
    u32(0);
    u32(0);
    u32(65535);
    u32(1);  // ethernet
    const auto frame = probe_frame();
    u32(3);       // seconds
    u32(subsec);  // microseconds or nanoseconds, per magic
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    return path;
  }

  void expect_one_probe_at(const fs::path& path, net::TimeUs expected_us) {
    // pcap::Reader agrees on the timestamp…
    {
      auto reader = pcap::Reader::open(path);
      net::RawFrame frame;
      ASSERT_EQ(reader.next(frame), pcap::ReadStatus::kOk);
      EXPECT_EQ(frame.timestamp_us, expected_us);
    }
    // …and every ingest path yields exactly one probe carrying it.
    for (const bool use_mmap : {true, false}) {
      core::IngestOptions options;
      options.use_cache = false;
      options.use_mmap = use_mmap;
      std::vector<net::TimeUs> stamps;
      const auto ingest = core::ingest_capture(
          path, test_telescope(), options, [&](const telescope::ProbeBatch& batch) {
            stamps.insert(stamps.end(), batch.timestamp_us.begin(),
                          batch.timestamp_us.end());
          });
      EXPECT_EQ(ingest.sensor.scan_probes, 1u);
      EXPECT_EQ(ingest.frames, 1u);
      EXPECT_EQ(ingest.status, pcap::ReadStatus::kEndOfFile);
      ASSERT_EQ(stamps.size(), 1u);
      EXPECT_EQ(stamps[0], expected_us);
    }
  }

  fs::path dir_;
};

TEST_F(IngestDialects, MicrosecondNanosecondAndBigEndianCapturesAgree) {
  const net::TimeUs expected = 3 * net::kMicrosPerSecond + 5;
  expect_one_probe_at(write_capture("le_us.pcap", 0xa1b2c3d4, false, 5), expected);
  expect_one_probe_at(write_capture("le_ns.pcap", 0xa1b23c4d, false, 5000), expected);
  expect_one_probe_at(write_capture("be_us.pcap", 0xa1b2c3d4, true, 5), expected);
  expect_one_probe_at(write_capture("be_ns.pcap", 0xa1b23c4d, true, 5000), expected);
}

TEST_F(IngestDialects, TruncatedCaptureKeepsProbesAndReportsStatus) {
  const auto path = write_capture("trunc.pcap", 0xa1b2c3d4, false, 5);
  // Append 7 bytes of a second record header: one whole probe survives,
  // the terminal status flips to kTruncated, and the cache preserves it.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char partial[7] = {};
    out.write(partial, sizeof(partial));
  }
  core::IngestOptions options;
  std::size_t probes = 0;
  const auto cold = core::ingest_capture(
      path, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { probes += batch.size(); });
  EXPECT_EQ(cold.status, pcap::ReadStatus::kTruncated);
  EXPECT_EQ(cold.frames, 1u);
  EXPECT_EQ(probes, 1u);
  EXPECT_FALSE(cold.from_cache);

  probes = 0;
  const auto warm = core::ingest_capture(
      path, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { probes += batch.size(); });
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.status, pcap::ReadStatus::kTruncated);
  EXPECT_EQ(warm.frames, 1u);
  EXPECT_EQ(probes, 1u);
  expect_same_sensor(warm.sensor, cold.sensor);
}

/// Restores the SIMD dispatch level a test overrode.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(telescope::simd::active_level()) {}
  ~SimdLevelGuard() { telescope::simd::set_active_level(saved_); }
  SimdLevelGuard(const SimdLevelGuard&) = delete;
  SimdLevelGuard& operator=(const SimdLevelGuard&) = delete;

 private:
  telescope::simd::SimdLevel saved_;
};

/// The full cold-path configuration matrix — SIMD dispatch × scan
/// parallelism × cache codec — pinned to one scalar/serial reference.
/// The capture must clear the 4 MiB chunked-scan floor in
/// core/ingest.cpp, so it is synthesized directly (~7 MB) rather than
/// through the slower simgen pipeline.
class IngestMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes.
    dir_ = fs::temp_directory_path() /
           (std::string("synscan_ingest_matrix_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    capture_ = dir_ / "matrix.pcap";

    simgen::Rng rng(20250809);
    auto writer = pcap::Writer::create(capture_);
    net::RawFrame frame;
    net::TimeUs now = 0;
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      now += 35;
      frame.timestamp_us = now;
      const std::uint64_t draw = rng.next_u64() % 100;
      net::TcpFrameSpec tcp;
      tcp.src_ip = net::Ipv4Address(0x05000000u + rng.next_u32() % (1u << 20));
      tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 4096);
      tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
      tcp.dst_port = (draw % 3 == 0) ? 443 : 80;
      tcp.sequence = rng.next_u32();
      tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
      if (draw < 70) {
        // scan probe (defaults: SYN)
      } else if (draw < 80) {
        tcp.flags =
            net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
      } else if (draw < 88) {
        tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);
      } else if (draw < 95) {
        net::UdpFrameSpec udp;
        udp.src_ip = tcp.src_ip;
        udp.dst_ip = tcp.dst_ip;
        udp.src_port = tcp.src_port;
        udp.dst_port = 53;
        frame.bytes = net::build_udp_frame(udp);
        writer.write(frame);
        continue;
      } else {
        tcp.dst_port = 23;  // ingress blocked
      }
      frame.bytes = net::build_tcp_frame(tcp);
      writer.write(frame);
    }
    writer.flush();
    ASSERT_GE(fs::file_size(capture_), std::size_t{4} << 20)
        << "capture too small to engage the chunked scan";
  }
  void TearDown() override { fs::remove_all(dir_); }

  struct MatrixRun {
    telescope::ProbeBatch probes;  ///< every probe, capture order
    core::IngestResult result;
  };

  [[nodiscard]] MatrixRun run(const core::IngestOptions& options) const {
    MatrixRun out;
    out.result = core::ingest_capture(
        capture_, test_telescope(), options,
        [&](const telescope::ProbeBatch& batch) {
          for (std::size_t i = 0; i < batch.size(); ++i) {
            out.probes.push_back(batch.get(i));
          }
        });
    return out;
  }

  static void expect_same_probes(const telescope::ProbeBatch& got,
                                 const telescope::ProbeBatch& want) {
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(got.timestamp_us, want.timestamp_us);
    EXPECT_EQ(got.source, want.source);
    EXPECT_EQ(got.destination, want.destination);
    EXPECT_EQ(got.source_port, want.source_port);
    EXPECT_EQ(got.destination_port, want.destination_port);
    EXPECT_EQ(got.sequence, want.sequence);
    EXPECT_EQ(got.acknowledgment, want.acknowledgment);
    EXPECT_EQ(got.ip_id, want.ip_id);
    EXPECT_EQ(got.window, want.window);
    EXPECT_EQ(got.ttl, want.ttl);
  }

  [[nodiscard]] static std::vector<char> slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static constexpr std::uint64_t kFrames = 110'000;
  fs::path dir_;
  fs::path capture_;
};

TEST_F(IngestMatrix, SimdChunksAndCodecAllMatchScalarSerialReference) {
  const SimdLevelGuard guard;
  namespace simd = telescope::simd;

  simd::set_active_level(simd::SimdLevel::kScalar);
  core::IngestOptions reference_options;
  reference_options.use_cache = false;
  reference_options.scan_chunks = 1;
  const auto reference = run(reference_options);
  ASSERT_GT(reference.probes.size(), 0u);
  ASSERT_EQ(reference.result.status, pcap::ReadStatus::kEndOfFile);
  ASSERT_EQ(reference.result.chunks, 1u);

  // Cache bytes must depend only on the probe stream and codec, never on
  // which classify kernel or how many scan chunks produced them.
  std::map<core::CacheCodec, std::vector<char>> cache_bytes;

  int combo = 0;
  for (const auto level : {simd::SimdLevel::kScalar, simd::detected_level()}) {
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{4}}) {
      for (const auto codec :
           {core::CacheCodec::kRaw, core::CacheCodec::kDeltaVarint}) {
        SCOPED_TRACE(std::string("level=") + simd::to_string(level) +
                     " chunks=" + std::to_string(chunks) +
                     " codec=" + (codec == core::CacheCodec::kRaw ? "raw" : "delta"));
        simd::set_active_level(level);
        core::IngestOptions options;
        options.scan_chunks = chunks;
        options.cache_codec = codec;
        options.cache_path = dir_ / ("matrix_" + std::to_string(combo++) + ".spc");
        const auto cold = run(options);

        EXPECT_FALSE(cold.result.from_cache);
        EXPECT_EQ(cold.result.frames, reference.result.frames);
        EXPECT_EQ(cold.result.status, reference.result.status);
        if (chunks > 1) EXPECT_GT(cold.result.chunks, 1u);
        expect_same_probes(cold.probes, reference.probes);
        expect_same_sensor(cold.result.sensor, reference.result.sensor);

        const auto bytes = slurp(options.cache_path);
        ASSERT_FALSE(bytes.empty());
        const auto [it, inserted] = cache_bytes.emplace(codec, bytes);
        EXPECT_TRUE(inserted || it->second == bytes)
            << "cache bytes differ from the first " << (codec == core::CacheCodec::kRaw ? "raw" : "delta")
            << " file: the .spc is not path-independent";

        // And the warm read of what this combo wrote round-trips.
        const auto warm = run(options);
        EXPECT_TRUE(warm.result.from_cache);
        expect_same_probes(warm.probes, reference.probes);
        expect_same_sensor(warm.result.sensor, reference.result.sensor);
      }
    }
  }
  EXPECT_NE(cache_bytes[core::CacheCodec::kRaw],
            cache_bytes[core::CacheCodec::kDeltaVarint]);
}

TEST_F(IngestMatrix, CorruptCacheFallsBackToRescanAndRewrites) {
  const auto spc = dir_ / "fallback.spc";
  core::IngestOptions options;
  options.cache_path = spc;
  const auto cold = run(options);
  ASSERT_FALSE(cold.result.from_cache);
  ASSERT_TRUE(fs::exists(spc));

  // Flip one byte deep in the compressed probe stream: the checksum
  // walk rejects the cache and ingest re-scans the capture — no crash,
  // identical probes, and a fresh valid cache left behind.
  {
    std::fstream file(spc, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(4096);
    char byte = 0;
    file.seekg(4096);
    file.get(byte);
    file.seekp(4096);
    file.put(static_cast<char>(byte ^ 0x20));
  }
  const auto rescanned = run(options);
  EXPECT_FALSE(rescanned.result.from_cache);
  expect_same_probes(rescanned.probes, cold.probes);
  expect_same_sensor(rescanned.result.sensor, cold.result.sensor);

  const auto warm = run(options);
  EXPECT_TRUE(warm.result.from_cache);
  expect_same_probes(warm.probes, cold.probes);
}

}  // namespace
}  // namespace synscan
