// Differential test for the batched ingest front-end: every ingest path
// (mmap, stream fallback, warm probe cache, parallel feeder) must produce
// the exact sensor counters, tracker counters and campaigns that the
// original per-frame `Pipeline::feed_frame` path produces.
#include "core/ingest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>
#include <vector>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "net/endian.h"
#include "pcap/pcap.h"
#include "simgen/generator.h"
#include "test_support.h"

namespace synscan {
namespace {

namespace fs = std::filesystem;

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}},
      {{23, 0}});  // telnet blocked from the start
  return telescope;
}

simgen::YearConfig capture_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 20240;
  config.port_table = {{80, 60}, {23, 20}, {443, 20}};
  config.noise_sources = 25;
  config.backscatter_fraction = 0.1;

  simgen::GroupSpec group;
  group.name = "ingest-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 4;
  group.campaigns = 4;
  group.hits_median = 250;
  group.hits_sigma = 1.1;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);
  return config;
}

void expect_same_sensor(const telescope::SensorCounters& got,
                        const telescope::SensorCounters& want) {
  EXPECT_EQ(got.scan_probes, want.scan_probes);
  EXPECT_EQ(got.backscatter, want.backscatter);
  EXPECT_EQ(got.xmas_or_null, want.xmas_or_null);
  EXPECT_EQ(got.other_tcp, want.other_tcp);
  EXPECT_EQ(got.udp, want.udp);
  EXPECT_EQ(got.icmp, want.icmp);
  EXPECT_EQ(got.not_monitored, want.not_monitored);
  EXPECT_EQ(got.ingress_blocked, want.ingress_blocked);
  EXPECT_EQ(got.malformed, want.malformed);
  EXPECT_EQ(got.spoofed_source, want.spoofed_source);
}

void expect_same_tracking(const core::PipelineResult& got,
                          const core::PipelineResult& want) {
  EXPECT_EQ(got.tracker.probes, want.tracker.probes);
  EXPECT_EQ(got.tracker.campaigns, want.tracker.campaigns);
  EXPECT_EQ(got.tracker.subthreshold_flows, want.tracker.subthreshold_flows);
  EXPECT_EQ(got.tracker.subthreshold_packets, want.tracker.subthreshold_packets);
  EXPECT_EQ(got.tracker.expired_flows, want.tracker.expired_flows);
  EXPECT_EQ(got.tracker.sweeps, want.tracker.sweeps);

  ASSERT_EQ(got.campaigns.size(), want.campaigns.size());
  for (std::size_t i = 0; i < want.campaigns.size(); ++i) {
    EXPECT_EQ(got.campaigns[i].source, want.campaigns[i].source) << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].packets, want.campaigns[i].packets) << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].distinct_destinations,
              want.campaigns[i].distinct_destinations)
        << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].first_seen_us, want.campaigns[i].first_seen_us)
        << "campaign " << i;
    EXPECT_EQ(got.campaigns[i].last_seen_us, want.campaigns[i].last_seen_us)
        << "campaign " << i;
  }
}

/// Per-source campaign summary: (packets, distinct destinations). The
/// parallel merge re-issues ids, so cross-driver comparisons key on the
/// source address rather than position.
std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> summarize(
    const std::vector<core::Campaign>& campaigns) {
  std::multimap<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> out;
  for (const auto& campaign : campaigns) {
    out.emplace(campaign.source.value(),
                std::make_pair(campaign.packets, campaign.distinct_destinations));
  }
  return out;
}

class IngestDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_ingest_differential";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    capture_ = dir_ / "window.pcap";

    auto writer = pcap::Writer::create(capture_);
    simgen::TrafficGenerator generator(capture_config(), test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) { writer.write(f); });
    writer.flush();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The original path: pcap::Reader record-at-a-time into feed_frame.
  [[nodiscard]] core::PipelineResult reference_result() const {
    core::Pipeline pipeline(test_telescope());
    auto reader = pcap::Reader::open(capture_);
    net::RawFrame frame;
    while (reader.next(frame) == pcap::ReadStatus::kOk) pipeline.feed_frame(frame);
    return pipeline.finish();
  }

  /// Serial ingest through the given options; also returns the
  /// IngestResult so callers can assert which path ran.
  [[nodiscard]] std::pair<core::PipelineResult, core::IngestResult> ingest_result(
      const core::IngestOptions& options) const {
    core::Pipeline pipeline(test_telescope());
    const auto ingest = core::ingest_capture(
        capture_, test_telescope(), options,
        [&](const telescope::ProbeBatch& batch) { pipeline.feed_probes(batch); });
    pipeline.absorb_sensor_counters(ingest.sensor);
    return {pipeline.finish(), ingest};
  }

  fs::path dir_;
  fs::path capture_;
};

TEST_F(IngestDifferential, MmapStreamAndCachePathsMatchFrameByFrameReference) {
  const auto reference = reference_result();
  ASSERT_GT(reference.sensor.scan_probes, 0u);
  ASSERT_GT(reference.campaigns.size(), 0u);

  core::IngestOptions mmap_options;
  mmap_options.use_cache = false;
  const auto [mapped, mapped_ingest] = ingest_result(mmap_options);
  EXPECT_FALSE(mapped_ingest.from_cache);
  EXPECT_GT(mapped_ingest.batches, 0u);
  expect_same_sensor(mapped.sensor, reference.sensor);
  expect_same_tracking(mapped, reference);

  core::IngestOptions stream_options;
  stream_options.use_cache = false;
  stream_options.use_mmap = false;
  const auto [streamed, streamed_ingest] = ingest_result(stream_options);
  EXPECT_FALSE(streamed_ingest.mapped);
  expect_same_sensor(streamed.sensor, reference.sensor);
  expect_same_tracking(streamed, reference);

  // Cold cached run writes the .spc; warm run must come from it and
  // still match bit for bit.
  core::IngestOptions cached_options;
  const auto [cold, cold_ingest] = ingest_result(cached_options);
  EXPECT_FALSE(cold_ingest.from_cache);
  EXPECT_TRUE(fs::exists(capture_.native() + ".spc"));
  expect_same_sensor(cold.sensor, reference.sensor);
  expect_same_tracking(cold, reference);

  const auto [warm, warm_ingest] = ingest_result(cached_options);
  EXPECT_TRUE(warm_ingest.from_cache);
  EXPECT_EQ(warm_ingest.frames, cold_ingest.frames);
  EXPECT_EQ(warm_ingest.status, cold_ingest.status);
  expect_same_sensor(warm.sensor, reference.sensor);
  expect_same_tracking(warm, reference);

  // Touching the capture invalidates the cache: the next run re-decodes.
  {
    std::ofstream touch(capture_, std::ios::binary | std::ios::app);
    touch.put('\0');
  }
  const auto [stale, stale_ingest] = ingest_result(cached_options);
  EXPECT_FALSE(stale_ingest.from_cache);
  (void)stale;
}

TEST_F(IngestDifferential, ParallelProbeFeedMatchesSerialReference) {
  const auto reference = reference_result();

  core::IngestOptions options;
  options.use_cache = false;
  core::ParallelAnalyzer analyzer(test_telescope(), 3);
  const auto ingest = core::ingest_capture(
      capture_, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { analyzer.feed_probes(batch); });
  analyzer.absorb_sensor_counters(ingest.sensor);
  const auto parallel = analyzer.finish();

  expect_same_sensor(parallel.sensor, reference.sensor);
  EXPECT_EQ(parallel.tracker.probes, reference.tracker.probes);
  EXPECT_EQ(parallel.tracker.campaigns, reference.tracker.campaigns);
  EXPECT_EQ(summarize(parallel.campaigns), summarize(reference.campaigns));
  // The merge re-issues ids 1..n in its deterministic order (which is
  // sorted, unlike the serial driver's flow-close order).
  ASSERT_EQ(parallel.campaigns.size(), reference.campaigns.size());
  for (std::size_t i = 0; i < parallel.campaigns.size(); ++i) {
    EXPECT_EQ(parallel.campaigns[i].id, i + 1);
  }
}

/// Hand-crafted single-probe captures in the three classic pcap on-disk
/// dialects (LE microseconds, LE nanoseconds, BE microseconds): the
/// batched ingest must read all of them exactly like pcap::Reader.
class IngestDialects : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_ingest_dialects";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// One SYN to the dark net, timestamped 3.000005s.
  [[nodiscard]] static std::vector<std::uint8_t> probe_frame() {
    return testing::syn_frame(net::Ipv4Address::from_octets(93, 184, 216, 34),
                              net::Ipv4Address::from_octets(198, 51, 0, 9), 80);
  }

  /// Writes a classic pcap by hand so the magic/byte order/sub-second
  /// unit are exactly what the test names.
  [[nodiscard]] fs::path write_capture(const char* name, std::uint32_t magic,
                                       bool big_endian, std::uint32_t subsec) {
    const auto path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    const auto u16 = [&](std::uint16_t v) {
      std::uint8_t b[2];
      big_endian ? net::store_be16(b, v) : net::store_le16(b, v);
      out.write(reinterpret_cast<const char*>(b), 2);
    };
    const auto u32 = [&](std::uint32_t v) {
      std::uint8_t b[4];
      big_endian ? net::store_be32(b, v) : net::store_le32(b, v);
      out.write(reinterpret_cast<const char*>(b), 4);
    };
    u32(magic);
    u16(2);
    u16(4);
    u32(0);
    u32(0);
    u32(65535);
    u32(1);  // ethernet
    const auto frame = probe_frame();
    u32(3);       // seconds
    u32(subsec);  // microseconds or nanoseconds, per magic
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    return path;
  }

  void expect_one_probe_at(const fs::path& path, net::TimeUs expected_us) {
    // pcap::Reader agrees on the timestamp…
    {
      auto reader = pcap::Reader::open(path);
      net::RawFrame frame;
      ASSERT_EQ(reader.next(frame), pcap::ReadStatus::kOk);
      EXPECT_EQ(frame.timestamp_us, expected_us);
    }
    // …and every ingest path yields exactly one probe carrying it.
    for (const bool use_mmap : {true, false}) {
      core::IngestOptions options;
      options.use_cache = false;
      options.use_mmap = use_mmap;
      std::vector<net::TimeUs> stamps;
      const auto ingest = core::ingest_capture(
          path, test_telescope(), options, [&](const telescope::ProbeBatch& batch) {
            stamps.insert(stamps.end(), batch.timestamp_us.begin(),
                          batch.timestamp_us.end());
          });
      EXPECT_EQ(ingest.sensor.scan_probes, 1u);
      EXPECT_EQ(ingest.frames, 1u);
      EXPECT_EQ(ingest.status, pcap::ReadStatus::kEndOfFile);
      ASSERT_EQ(stamps.size(), 1u);
      EXPECT_EQ(stamps[0], expected_us);
    }
  }

  fs::path dir_;
};

TEST_F(IngestDialects, MicrosecondNanosecondAndBigEndianCapturesAgree) {
  const net::TimeUs expected = 3 * net::kMicrosPerSecond + 5;
  expect_one_probe_at(write_capture("le_us.pcap", 0xa1b2c3d4, false, 5), expected);
  expect_one_probe_at(write_capture("le_ns.pcap", 0xa1b23c4d, false, 5000), expected);
  expect_one_probe_at(write_capture("be_us.pcap", 0xa1b2c3d4, true, 5), expected);
  expect_one_probe_at(write_capture("be_ns.pcap", 0xa1b23c4d, true, 5000), expected);
}

TEST_F(IngestDialects, TruncatedCaptureKeepsProbesAndReportsStatus) {
  const auto path = write_capture("trunc.pcap", 0xa1b2c3d4, false, 5);
  // Append 7 bytes of a second record header: one whole probe survives,
  // the terminal status flips to kTruncated, and the cache preserves it.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char partial[7] = {};
    out.write(partial, sizeof(partial));
  }
  core::IngestOptions options;
  std::size_t probes = 0;
  const auto cold = core::ingest_capture(
      path, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { probes += batch.size(); });
  EXPECT_EQ(cold.status, pcap::ReadStatus::kTruncated);
  EXPECT_EQ(cold.frames, 1u);
  EXPECT_EQ(probes, 1u);
  EXPECT_FALSE(cold.from_cache);

  probes = 0;
  const auto warm = core::ingest_capture(
      path, test_telescope(), options,
      [&](const telescope::ProbeBatch& batch) { probes += batch.size(); });
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.status, pcap::ReadStatus::kTruncated);
  EXPECT_EQ(warm.frames, 1u);
  EXPECT_EQ(probes, 1u);
  expect_same_sensor(warm.sensor, cold.sensor);
}

}  // namespace
}  // namespace synscan
