// Differential test for the decade-scale rollup layer: splitting a
// capture into shards, analyzing each shard independently and merging
// the rollups (core/rollup.h, core/shard.h) must produce a report that
// is byte-for-byte identical to analyzing the whole capture in one
// pass — for any shard count, at any split boundary (including
// mid-campaign), and whether the shards were re-analyzed or served from
// the persistent `.spr` store.
#include "core/shard.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/analysis_session.h"
#include "core/rollup_store.h"
#include "pcap/pcap.h"
#include "report/json.h"
#include "simgen/generator.h"

namespace synscan {
namespace {

namespace fs = std::filesystem;

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}},
      {{23, 0}});
  return telescope;
}

/// A one-day window with several overlapping campaigns plus noise, so
/// any shard boundary lands inside at least one open flow and the
/// boundary-carry merge actually has seams to join.
simgen::YearConfig capture_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 20240809;
  config.port_table = {{80, 50}, {23, 25}, {443, 25}};
  config.noise_sources = 40;
  config.backscatter_fraction = 0.1;

  simgen::GroupSpec group;
  group.name = "rollup-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 6;
  group.campaigns = 5;
  group.hits_median = 300;
  group.hits_sigma = 1.2;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);
  return config;
}

/// The served report surface: pipeline counters JSON, then the campaign
/// JSONL — exactly what `analyze --json` and `rollup query` emit.
std::string report_bytes(const core::AnalyzedCapture& analysis) {
  std::string out;
  report::append_counters_json(out, analysis.result);
  out.push_back('\n');
  report::append_campaigns_jsonl(out, analysis.result.campaigns);
  return out;
}

class RollupDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_rollup_differential";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    whole_ = dir_ / "whole.pcap";

    auto writer = pcap::Writer::create(whole_);
    simgen::TrafficGenerator generator(capture_config(), test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) { writer.write(f); });
    writer.flush();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Splits the whole capture's records into `count` files at uneven
  /// boundaries (shard i gets a slice proportional to i+1, so the seams
  /// never align with anything natural in the traffic).
  [[nodiscard]] std::vector<fs::path> split_capture(std::size_t count) const {
    std::uint64_t total = 0;
    {
      auto reader = pcap::Reader::open(whole_);
      net::RawFrame frame;
      while (reader.next(frame) == pcap::ReadStatus::kOk) ++total;
    }
    const std::uint64_t weight_sum = count * (count + 1) / 2;

    std::vector<fs::path> shards;
    auto reader = pcap::Reader::open(whole_);
    net::RawFrame frame;
    std::uint64_t written = 0;
    for (std::size_t i = 0; i < count; ++i) {
      auto path = dir_ / ("shard_" + std::to_string(count) + "_" +
                          std::to_string(i) + ".pcap");
      auto writer = pcap::Writer::create(path);
      // Last shard takes the remainder.
      const std::uint64_t quota =
          i + 1 == count ? total - written : total * (i + 1) / weight_sum;
      for (std::uint64_t n = 0; n < quota && reader.next(frame) == pcap::ReadStatus::kOk;
           ++n) {
        writer.write(frame);
        ++written;
      }
      writer.flush();
      shards.push_back(std::move(path));
    }
    EXPECT_EQ(written, total);
    return shards;
  }

  [[nodiscard]] core::ShardRunResult run(const std::vector<fs::path>& captures,
                                         bool use_store,
                                         std::size_t workers) const {
    const auto plan = core::plan_shards(captures);
    core::ShardRunOptions options;
    options.workers = workers;
    options.use_rollup_store = use_store;
    options.ingest.use_cache = false;
    return core::run_shards(plan, test_telescope(),
                            enrich::InternetRegistry::synthetic_default(),
                            core::TrackerConfig{}, options);
  }

  fs::path dir_;
  fs::path whole_;
};

TEST_F(RollupDifferential, MergedShardsMatchWholeCaptureByteForByte) {
  core::IngestOptions ingest;
  ingest.use_cache = false;
  const auto whole = core::analyze_capture(whole_, test_telescope(),
                                           enrich::InternetRegistry::synthetic_default(),
                                           1, ingest);
  ASSERT_GT(whole.result.sensor.scan_probes, 0u);
  ASSERT_GT(whole.result.campaigns.size(), 1u);
  const auto reference = report_bytes(whole);

  for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{7}}) {
    const auto shards = split_capture(count);
    const auto merged = run(shards, false, 2);
    EXPECT_EQ(merged.stats.shards, count);
    EXPECT_EQ(report_bytes(merged.analysis), reference)
        << count << " shards diverged from the whole-capture analysis";
    // The merged streaming tallies agree too (the report surface only
    // covers counters + campaigns; these feed the analytics commands).
    EXPECT_EQ(merged.analysis.frames, whole.frames) << count << " shards";
    EXPECT_EQ(merged.analysis.ports.total_packets(), whole.ports.total_packets());
    EXPECT_EQ(merged.analysis.ports.total_sources(), whole.ports.total_sources());
    EXPECT_EQ(merged.analysis.types.total_sources(), whole.types.total_sources());
    EXPECT_EQ(merged.analysis.geo.total_packets(), whole.geo.total_packets());
  }
}

TEST_F(RollupDifferential, IncrementalStorePathStaysByteIdentical) {
  core::IngestOptions ingest;
  ingest.use_cache = false;
  const auto whole = core::analyze_capture(whole_, test_telescope(),
                                           enrich::InternetRegistry::synthetic_default(),
                                           1, ingest);
  const auto reference = report_bytes(whole);

  const auto shards = split_capture(3);

  // Build pass: every shard analyzed and persisted.
  const auto built = run(shards, true, 2);
  EXPECT_EQ(built.stats.store_misses, 3u);
  EXPECT_EQ(built.stats.store_writes, 3u);
  EXPECT_EQ(report_bytes(built.analysis), reference);

  // Warm pass: everything served from the store.
  const auto warm = run(shards, true, 2);
  EXPECT_EQ(warm.stats.store_hits, 3u);
  EXPECT_EQ(warm.stats.store_misses, 0u);
  EXPECT_EQ(report_bytes(warm.analysis), reference);

  // Incremental pass: one rollup dropped — only that shard re-analyzes,
  // and the mixed loaded/recomputed merge still matches exactly.
  fs::remove(core::rollup_path_for(shards[1]));
  const auto incremental = run(shards, true, 2);
  EXPECT_EQ(incremental.stats.store_hits, 2u);
  EXPECT_EQ(incremental.stats.store_misses, 1u);
  EXPECT_EQ(incremental.stats.store_writes, 1u);
  EXPECT_EQ(report_bytes(incremental.analysis), reference);
}

}  // namespace
}  // namespace synscan
