// Integration: frames through sensor, tracker and observers, including
// the pcap round trip (generate -> write -> read -> analyze).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/port_tally.h"
#include "core/volatility.h"
#include "pcap/pcap.h"
#include "simgen/generator.h"
#include "test_support.h"

namespace synscan {
namespace {

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}},
      {{23, 0}});  // telnet blocked from the start
  return telescope;
}

simgen::YearConfig pipeline_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 777;
  config.port_table = {{80, 60}, {23, 20}, {443, 20}};
  config.noise_sources = 10;
  config.backscatter_fraction = 0.1;

  simgen::GroupSpec group;
  group.name = "pipeline-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 4;
  group.campaigns = 4;
  group.hits_median = 250;
  group.hits_sigma = 1.1;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);
  return config;
}

TEST(PipelineIntegration, SensorSeparatesTrafficClasses) {
  core::Pipeline pipeline(test_telescope());
  simgen::TrafficGenerator generator(pipeline_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  const auto gen_stats =
      generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  // Every generated frame was classified as *something*.
  EXPECT_EQ(result.sensor.total(), gen_stats.total_frames);
  // Backscatter frames never become probes.
  EXPECT_GT(result.sensor.backscatter, 0u);
  // Port 23 traffic was dropped at the ingress.
  EXPECT_GT(result.sensor.ingress_blocked, 0u);
  EXPECT_EQ(result.sensor.scan_probes + result.sensor.backscatter +
                result.sensor.ingress_blocked + result.sensor.other_tcp,
            gen_stats.total_frames);
}

TEST(PipelineIntegration, ObserversSeeExactlyTheProbes) {
  core::Pipeline pipeline(test_telescope());
  core::PortTally tally;
  pipeline.add_observer(tally);
  simgen::TrafficGenerator generator(pipeline_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();
  EXPECT_EQ(tally.total_packets(), result.sensor.scan_probes);
  EXPECT_EQ(result.tracker.probes, result.sensor.scan_probes);
  // The blocked port must be invisible downstream.
  EXPECT_EQ(tally.packets_on_port(23), 0u);
  EXPECT_GT(tally.packets_on_port(80), 0u);
}

TEST(PipelineIntegration, PcapRoundTripPreservesAnalysis) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "synscan_integration";
  fs::create_directories(dir);
  const auto path = dir / "window.pcap";

  // Pass 1: generate straight into the pipeline AND onto disk.
  core::Pipeline live(test_telescope());
  {
    auto writer = pcap::Writer::create(path);
    simgen::TrafficGenerator generator(pipeline_config(), test_telescope(),
                                       enrich::InternetRegistry::synthetic_default());
    (void)generator.run([&](const net::RawFrame& f) {
      writer.write(f);
      live.feed_frame(f);
    });
    writer.flush();
  }
  const auto live_result = live.finish();

  // Pass 2: read the capture back and re-analyze.
  core::Pipeline replay(test_telescope());
  auto reader = pcap::Reader::open(path);
  net::RawFrame frame;
  while (reader.next(frame) == pcap::ReadStatus::kOk) {
    replay.feed_frame(frame);
  }
  const auto replay_result = replay.finish();

  EXPECT_EQ(replay_result.sensor.scan_probes, live_result.sensor.scan_probes);
  ASSERT_EQ(replay_result.campaigns.size(), live_result.campaigns.size());
  for (std::size_t i = 0; i < live_result.campaigns.size(); ++i) {
    EXPECT_EQ(replay_result.campaigns[i].source, live_result.campaigns[i].source);
    EXPECT_EQ(replay_result.campaigns[i].packets, live_result.campaigns[i].packets);
    EXPECT_EQ(replay_result.campaigns[i].tool, live_result.campaigns[i].tool);
  }
  fs::remove_all(dir);
}

TEST(PipelineIntegration, FeedProbeBypassesSensor) {
  core::Pipeline pipeline(test_telescope());
  core::PortTally tally;
  pipeline.add_observer(tally);
  for (int i = 0; i < 150; ++i) {
    pipeline.feed_probe(testing::ProbeBuilder()
                            .from(net::Ipv4Address::from_octets(9, 9, 9, 9))
                            .to(net::Ipv4Address(0xc6330000u + static_cast<std::uint32_t>(i)))
                            .at(i * net::kMicrosPerSecond));
  }
  const auto result = pipeline.finish();
  EXPECT_EQ(result.sensor.scan_probes, 0u);  // sensor untouched
  EXPECT_EQ(tally.total_packets(), 150u);
  EXPECT_EQ(result.campaigns.size(), 1u);
}

TEST(PipelineIntegration, VolatilityObserverIntegrates) {
  core::Pipeline pipeline(test_telescope());
  core::VolatilityTracker volatility(0, net::kMicrosPerDay);  // daily buckets
  pipeline.add_observer(volatility);
  simgen::TrafficGenerator generator(pipeline_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  auto result = pipeline.finish();
  for (const auto& campaign : result.campaigns) volatility.on_campaign(campaign);
  const auto vol = volatility.result();
  EXPECT_GT(vol.netblocks, 0u);
}

}  // namespace
}  // namespace synscan
