// Property-based suites: invariants that must hold for arbitrary
// workloads, swept over seeds with parameterized tests.
#include <gtest/gtest.h>

#include <numeric>

#include "core/pipeline.h"
#include "core/port_tally.h"
#include "pcap/pcap.h"
#include "simgen/generator.h"
#include "simgen/rng.h"

namespace synscan {
namespace {

// ---------------------------------------------------------------------------
// Tracker conservation laws under random probe streams.
// ---------------------------------------------------------------------------

class TrackerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<telescope::ScanProbe> random_probe_stream(std::uint64_t seed,
                                                      std::size_t count) {
  simgen::Rng rng(seed);
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(count);
  net::TimeUs t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    telescope::ScanProbe probe;
    // A handful of sources with very different behaviors.
    probe.source = net::Ipv4Address(0x0a000000u + static_cast<std::uint32_t>(rng.uniform(24)));
    probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 4096);
    probe.destination_port = static_cast<std::uint16_t>(1 + rng.uniform(1024));
    probe.source_port = rng.next_u16();
    probe.sequence = rng.next_u32();
    probe.ip_id = rng.next_u16();
    t += static_cast<net::TimeUs>(rng.exponential(3e6));  // ~3s mean gap
    probe.timestamp_us = t;
    probes.push_back(probe);
  }
  return probes;
}

TEST_P(TrackerPropertyTest, PacketsAreConserved) {
  const auto probes = random_probe_stream(GetParam(), 5000);
  std::vector<core::Campaign> campaigns;
  core::CampaignTracker tracker({}, 71536, [&](core::Campaign&& campaign) {
    campaigns.push_back(std::move(campaign));
  });
  for (const auto& probe : probes) tracker.feed(probe);
  tracker.finish();

  std::uint64_t campaign_packets = 0;
  for (const auto& campaign : campaigns) campaign_packets += campaign.packets;
  EXPECT_EQ(campaign_packets + tracker.counters().subthreshold_packets, probes.size());
  EXPECT_EQ(tracker.counters().probes, probes.size());
}

TEST_P(TrackerPropertyTest, CampaignInvariantsHold) {
  const auto probes = random_probe_stream(GetParam() ^ 0xabcd, 8000);
  const auto campaigns = core::CampaignTracker::collect({}, 71536, probes);
  for (const auto& campaign : campaigns) {
    EXPECT_LE(campaign.first_seen_us, campaign.last_seen_us);
    EXPECT_GE(campaign.distinct_destinations, 100u);  // threshold respected
    EXPECT_LE(campaign.distinct_destinations, campaign.packets);
    EXPECT_GE(campaign.extrapolated_pps, 100.0);      // rate threshold respected
    std::uint64_t port_sum = 0;
    for (const auto& [port, packets] : campaign.port_packets) port_sum += packets;
    EXPECT_EQ(port_sum, campaign.packets);
    EXPECT_GE(campaign.coverage_fraction, 0.0);
    EXPECT_LE(campaign.coverage_fraction, 1.0);
  }
}

TEST_P(TrackerPropertyTest, FeedOrderWithinSourcesIsWhatMatters) {
  // Interleaving probes of different sources must not change per-source
  // campaign totals.
  auto probes = random_probe_stream(GetParam() ^ 0x77, 4000);
  const auto campaigns_a = core::CampaignTracker::collect({}, 71536, probes);

  // Stable-partition by source parity, preserving per-source order and
  // timestamps (the tracker keys expiry on per-source gaps).
  std::stable_sort(probes.begin(), probes.end(),
                   [](const telescope::ScanProbe& a, const telescope::ScanProbe& b) {
                     return (a.source.value() & 1) < (b.source.value() & 1);
                   });
  const auto campaigns_b = core::CampaignTracker::collect({}, 71536, probes);

  std::map<std::uint32_t, std::uint64_t> packets_a;
  std::map<std::uint32_t, std::uint64_t> packets_b;
  for (const auto& campaign : campaigns_a) packets_a[campaign.source.value()] += campaign.packets;
  for (const auto& campaign : campaigns_b) packets_b[campaign.source.value()] += campaign.packets;
  EXPECT_EQ(packets_a, packets_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Pcap round trips over random frame contents.
// ---------------------------------------------------------------------------

class PcapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcapPropertyTest, ArbitraryFramesRoundTrip) {
  simgen::Rng rng(GetParam());
  std::vector<net::RawFrame> frames;
  net::TimeUs t = 0;
  for (int i = 0; i < 200; ++i) {
    net::RawFrame frame;
    t += static_cast<net::TimeUs>(rng.uniform(10'000'000));
    frame.timestamp_us = t;
    frame.bytes.resize(rng.uniform(512));
    for (auto& b : frame.bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    frames.push_back(std::move(frame));
  }
  const auto path = std::filesystem::temp_directory_path() /
                    ("synscan_prop_" + std::to_string(GetParam()) + ".pcap");
  pcap::write_file(path, frames);
  const auto [read, status] = pcap::read_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(status, pcap::ReadStatus::kEndOfFile);
  ASSERT_EQ(read.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(read[i].timestamp_us, frames[i].timestamp_us);
    EXPECT_EQ(read[i].bytes, frames[i].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapPropertyTest, ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Sensor: every frame is classified exactly once; probes only from SYNs.
// ---------------------------------------------------------------------------

class SensorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensorPropertyTest, ClassificationIsTotalAndCountersBalance) {
  simgen::Rng rng(GetParam());
  const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 700}}, {{23, 0}});
  telescope::Sensor sensor(telescope);
  telescope::ScanProbe probe;

  const std::size_t kFrames = 3000;
  std::uint64_t probes = 0;
  for (std::size_t i = 0; i < kFrames; ++i) {
    net::RawFrame frame;
    frame.timestamp_us = static_cast<net::TimeUs>(i);
    const auto kind = rng.uniform(5);
    if (kind == 4) {
      // Garbage bytes.
      frame.bytes.resize(rng.uniform(64));
      for (auto& b : frame.bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    } else {
      net::TcpFrameSpec spec;
      spec.src_ip = net::Ipv4Address(rng.next_u32());
      spec.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 8192);
      spec.dst_port = static_cast<std::uint16_t>(rng.uniform(2048));
      spec.src_port = rng.next_u16();
      spec.sequence = rng.next_u32();
      spec.flags = static_cast<std::uint8_t>(rng.uniform(64));
      frame.bytes = net::build_tcp_frame(spec);
    }
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      ++probes;
      // A probe implies the destination is dark and the port unblocked.
      EXPECT_TRUE(telescope.monitors(probe.destination));
      EXPECT_NE(probe.destination_port, 23);
      EXPECT_FALSE(probe.source.is_reserved_source());
    }
  }
  EXPECT_EQ(sensor.counters().total(), kFrames);
  EXPECT_EQ(sensor.counters().scan_probes, probes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensorPropertyTest, ::testing::Values(7u, 19u, 23u));

// ---------------------------------------------------------------------------
// Generator: hits arrive for every planned campaign; PortTally agrees
// with the tracker on totals.
// ---------------------------------------------------------------------------

TEST(GeneratorProperty, ObserversAndTrackerAgree) {
  const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {});
  simgen::YearConfig config;
  config.window_days = 1;
  config.seed = 99;
  config.port_table = {{80, 1}};
  config.noise_sources = 25;
  config.backscatter_fraction = 0.0;
  simgen::GroupSpec group;
  group.name = "agree";
  group.sources = 2;
  group.campaigns = 4;
  group.hits_median = 250;
  group.hits_sigma = 1.1;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);

  core::Pipeline pipeline(telescope);
  core::PortTally tally;
  pipeline.add_observer(tally);
  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  const auto stats = generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  EXPECT_EQ(stats.scan_frames, result.sensor.scan_probes);
  EXPECT_EQ(tally.total_packets(), result.sensor.scan_probes);
  std::uint64_t campaign_packets = 0;
  for (const auto& campaign : result.campaigns) campaign_packets += campaign.packets;
  EXPECT_EQ(campaign_packets + result.tracker.subthreshold_packets,
            tally.total_packets());
}

}  // namespace
}  // namespace synscan
