// Shared helpers for the test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "telescope/sensor.h"

namespace synscan::testing {

/// Builds a ScanProbe with sensible defaults, overridable per field.
struct ProbeBuilder {
  telescope::ScanProbe probe;

  ProbeBuilder() {
    probe.timestamp_us = 1'000'000;
    probe.source = net::Ipv4Address::from_octets(5, 6, 7, 8);
    probe.destination = net::Ipv4Address::from_octets(198, 51, 3, 4);
    probe.source_port = 40000;
    probe.destination_port = 80;
    probe.sequence = 0x12345678;
    probe.ip_id = 7;
    probe.window = 1024;
    probe.ttl = 64;
  }

  ProbeBuilder& at(net::TimeUs t) {
    probe.timestamp_us = t;
    return *this;
  }
  ProbeBuilder& from(net::Ipv4Address src) {
    probe.source = src;
    return *this;
  }
  ProbeBuilder& to(net::Ipv4Address dst) {
    probe.destination = dst;
    return *this;
  }
  ProbeBuilder& port(std::uint16_t p) {
    probe.destination_port = p;
    return *this;
  }
  ProbeBuilder& sport(std::uint16_t p) {
    probe.source_port = p;
    return *this;
  }
  ProbeBuilder& seq(std::uint32_t s) {
    probe.sequence = s;
    return *this;
  }
  ProbeBuilder& ipid(std::uint16_t id) {
    probe.ip_id = id;
    return *this;
  }
  operator telescope::ScanProbe() const { return probe; }  // NOLINT(google-explicit-constructor)
};

/// A minimal valid SYN frame for sensor-level tests.
inline std::vector<std::uint8_t> syn_frame(net::Ipv4Address src, net::Ipv4Address dst,
                                           std::uint16_t dst_port,
                                           std::uint8_t flags = net::flag_bit(net::TcpFlag::kSyn)) {
  net::TcpFrameSpec spec;
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = 12345;
  spec.dst_port = dst_port;
  spec.sequence = 42;
  spec.flags = flags;
  return net::build_tcp_frame(spec);
}

}  // namespace synscan::testing
