# Compile-fail harness for the thread-safety annotations in
# src/core/sync.h, run from ctest (test `threadsafety_fixtures`) as
#
#   cmake -DCOMPILER=<c++> -DINCLUDE_DIR=<repo>/src
#         -DFIXTURE_DIR=<repo>/tests/threadsafety/fixtures
#         -DEXPECT_ANALYSIS=ON|OFF -P check_fixtures.cmake
#
# Each fixture is a minimal translation unit. Fixtures without "clean"
# in their name seed exactly one locking bug and carry one or more
# `// expect: <substring>` lines naming the diagnostic they provoke.
#
# EXPECT_ANALYSIS=ON (clang, SYNSCAN_THREAD_SAFETY on): every seeded
# fixture must (a) be REJECTED under -Werror=thread-safety with all
# expected substrings present in the compiler output, and (b) compile
# WITHOUT the analysis flags — proving the rejection comes from the
# analysis, not from a broken fixture. Clean fixtures must compile WITH
# the flags.
#
# EXPECT_ANALYSIS=OFF (gcc: the macros expand to nothing): every
# fixture must simply compile, so the fixtures cannot rot on toolchains
# without the analysis.
#
# Plain execute_process + -fsyntax-only rather than try_compile:
# try_compile is unavailable in script (-P) mode, and syntax-only keeps
# the harness fast enough to run in every ctest invocation.

if(NOT COMPILER OR NOT INCLUDE_DIR OR NOT FIXTURE_DIR)
  message(FATAL_ERROR
    "check_fixtures.cmake requires COMPILER, INCLUDE_DIR and FIXTURE_DIR")
endif()

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
set(analysis_flags -Wthread-safety -Werror=thread-safety)

# Compiles `fixture`; `with_analysis` toggles the analysis flags.
# Returns the exit code and combined output through the two out-vars.
function(compile_fixture fixture with_analysis result_var output_var)
  set(command ${COMPILER} ${base_flags})
  if(with_analysis)
    list(APPEND command ${analysis_flags})
  endif()
  list(APPEND command ${fixture})
  execute_process(COMMAND ${command}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${result_var} "${code}" PARENT_SCOPE)
  set(${output_var} "${out}${err}" PARENT_SCOPE)
endfunction()

file(GLOB fixtures ${FIXTURE_DIR}/*.cpp)
list(SORT fixtures)
if(NOT fixtures)
  message(FATAL_ERROR "no fixtures found under ${FIXTURE_DIR}")
endif()

set(checked 0)
foreach(fixture IN LISTS fixtures)
  get_filename_component(name ${fixture} NAME)
  string(FIND "${name}" "clean" clean_at)

  if(NOT EXPECT_ANALYSIS)
    # No analysis available: every fixture must simply compile.
    compile_fixture(${fixture} FALSE code output)
    if(NOT code EQUAL 0)
      message(SEND_ERROR "${name}: must compile without analysis:\n${output}")
    endif()
  elseif(NOT clean_at EQUAL -1)
    # Clean fixture: correct usage must survive the analysis.
    compile_fixture(${fixture} TRUE code output)
    if(NOT code EQUAL 0)
      message(SEND_ERROR
        "${name}: clean fixture rejected under analysis:\n${output}")
    endif()
  else()
    # Seeded fixture: must be rejected, with the expected diagnostics...
    compile_fixture(${fixture} TRUE code output)
    if(code EQUAL 0)
      message(SEND_ERROR
        "${name}: compiled clean under -Werror=thread-safety; "
        "the seeded violation was not detected")
    else()
      file(STRINGS ${fixture} expect_lines REGEX "^// expect: ")
      if(NOT expect_lines)
        message(SEND_ERROR "${name}: seeded fixture has no '// expect:' lines")
      endif()
      foreach(line IN LISTS expect_lines)
        string(REPLACE "// expect: " "" pattern "${line}")
        string(FIND "${output}" "${pattern}" found_at)
        if(found_at EQUAL -1)
          message(SEND_ERROR
            "${name}: diagnostic lacks expected substring "
            "'${pattern}'; compiler output was:\n${output}")
        endif()
      endforeach()
    endif()
    # ... and must be valid C++ once the analysis is off, proving the
    # rejection comes from the analysis rather than a broken fixture.
    compile_fixture(${fixture} FALSE code output)
    if(NOT code EQUAL 0)
      message(SEND_ERROR
        "${name}: must compile without the analysis flags "
        "(the fixture itself is broken):\n${output}")
    endif()
  endif()

  math(EXPR checked "${checked}+1")
endforeach()

message(STATUS
  "threadsafety: ${checked} fixtures checked (analysis: ${EXPECT_ANALYSIS})")
