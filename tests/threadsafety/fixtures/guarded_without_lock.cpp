// Seeded violation: writes a SYNSCAN_GUARDED_BY member without holding
// its mutex. check_fixtures.cmake compiles this with
// -Werror=thread-safety (must be rejected, with the diagnostic below)
// and without it (must pass, proving the fixture is valid C++).
// expect: requires holding mutex
#include "core/sync.h"

namespace {

class Tally {
 public:
  void bump() { ++count_; }  // the bug: no MutexLock on mutex_

 private:
  synscan::core::Mutex mutex_;
  int count_ SYNSCAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch() {
  Tally tally;
  tally.bump();
}
