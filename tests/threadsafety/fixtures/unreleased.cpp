// Seeded violation: returns with the mutex still held (a manual lock()
// with no matching unlock() on the exit path).
// expect: still held at the end of function
#include "core/sync.h"

void leak_lock() {
  synscan::core::Mutex mutex;
  mutex.lock();
  // the bug: no unlock() before returning
}
