// Seeded violation: calls a SYNSCAN_REQUIRES(mutex_) function without
// holding the mutex. Rejected under -Werror=thread-safety; compiles
// without the analysis (see check_fixtures.cmake).
// expect: calling function
// expect: requires holding mutex
#include "core/sync.h"

namespace {

class Register {
 public:
  void set(int v) {
    set_locked(v);  // the bug: caller never took mutex_
  }

 private:
  void set_locked(int v) SYNSCAN_REQUIRES(mutex_) { value_ = v; }

  synscan::core::Mutex mutex_;
  int value_ SYNSCAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch() {
  Register reg;
  reg.set(1);
}
