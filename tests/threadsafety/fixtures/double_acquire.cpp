// Seeded violation: acquires the same mutex twice in one scope — a
// self-deadlock at runtime, a compile error under the analysis.
// expect: already held
#include "core/sync.h"

void double_acquire() {
  synscan::core::Mutex mutex;
  const synscan::core::MutexLock first(mutex);
  const synscan::core::MutexLock second(mutex);  // the bug: deadlock
}
