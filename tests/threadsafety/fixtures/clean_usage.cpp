// Control fixture: exercises every wrapper and annotation correctly.
// Must compile cleanly WITH -Werror=thread-safety — if this one fails,
// the harness is flagging correct code, not catching seeded bugs.
#include "core/sync.h"

#include <deque>

namespace {

using synscan::core::CondVar;
using synscan::core::Mutex;
using synscan::core::MutexLock;
using synscan::core::UniqueLock;

class Queue {
 public:
  void push(int v) SYNSCAN_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      push_locked(v);
    }
    ready_.notify_one();
  }

  [[nodiscard]] int pop() SYNSCAN_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (items_.empty()) ready_.wait(lock);
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

  [[nodiscard]] bool try_flag() SYNSCAN_EXCLUDES(mutex_) {
    if (!mutex_.try_lock()) return false;
    flagged_ = true;
    mutex_.unlock();
    return true;
  }

 private:
  void push_locked(int v) SYNSCAN_REQUIRES(mutex_) { items_.push_back(v); }

  Mutex mutex_;
  CondVar ready_;
  std::deque<int> items_ SYNSCAN_GUARDED_BY(mutex_);
  bool flagged_ SYNSCAN_GUARDED_BY(mutex_) = false;
};

}  // namespace

int touch() {
  Queue queue;
  queue.push(7);
  (void)queue.try_flag();
  return queue.pop();
}
