#include "net/headers.h"

#include <gtest/gtest.h>

#include "net/checksum.h"
#include "simgen/rng.h"

namespace synscan::net {
namespace {

TEST(Ethernet, EncodeDecodeRoundTrip) {
  EthernetHeader header;
  header.destination = *MacAddress::parse("02:00:00:00:00:01");
  header.source = *MacAddress::parse("02:00:00:00:00:02");
  header.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  std::vector<std::uint8_t> bytes;
  encode_ethernet(header, bytes);
  ASSERT_EQ(bytes.size(), EthernetHeader::kSize);

  const auto decoded = decode_ethernet(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->destination, header.destination);
  EXPECT_EQ(decoded->source, header.source);
  EXPECT_TRUE(decoded->is_ipv4());
}

TEST(Ethernet, RejectsShortFrames) {
  const std::vector<std::uint8_t> bytes(EthernetHeader::kSize - 1, 0);
  EXPECT_FALSE(decode_ethernet(bytes).has_value());
}

Ipv4Header sample_ipv4() {
  Ipv4Header header;
  header.total_length = 40;
  header.identification = 54321;
  header.dont_fragment = true;
  header.ttl = 61;
  header.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  header.source = Ipv4Address::from_octets(10, 1, 2, 3);
  header.destination = Ipv4Address::from_octets(198, 51, 7, 9);
  return header;
}

TEST(Ipv4, EncodeDecodeRoundTrip) {
  const auto header = sample_ipv4();
  std::vector<std::uint8_t> bytes;
  encode_ipv4(header, bytes);
  ASSERT_EQ(bytes.size(), Ipv4Header::kMinSize);

  const auto decoded = decode_ipv4(bytes, /*verify_checksum=*/true);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->total_length, header.total_length);
  EXPECT_EQ(decoded->identification, header.identification);
  EXPECT_EQ(decoded->dont_fragment, true);
  EXPECT_EQ(decoded->more_fragments, false);
  EXPECT_EQ(decoded->ttl, header.ttl);
  EXPECT_EQ(decoded->source, header.source);
  EXPECT_EQ(decoded->destination, header.destination);
  EXPECT_TRUE(decoded->is_tcp());
}

TEST(Ipv4, EncodedChecksumValidates) {
  std::vector<std::uint8_t> bytes;
  encode_ipv4(sample_ipv4(), bytes);
  // RFC 1071: header including its checksum folds to zero.
  EXPECT_EQ(internet_checksum(bytes), 0);
}

TEST(Ipv4, DecodeRejectsCorruptedChecksum) {
  std::vector<std::uint8_t> bytes;
  encode_ipv4(sample_ipv4(), bytes);
  bytes[8] ^= 0x01;  // flip a TTL bit
  EXPECT_TRUE(decode_ipv4(bytes, false).has_value());
  EXPECT_FALSE(decode_ipv4(bytes, true).has_value());
}

TEST(Ipv4, DecodeRejectsWrongVersion) {
  std::vector<std::uint8_t> bytes;
  encode_ipv4(sample_ipv4(), bytes);
  bytes[0] = (6u << 4) | 5u;  // IPv6 version nibble
  EXPECT_FALSE(decode_ipv4(bytes).has_value());
}

TEST(Ipv4, DecodeRejectsShortIhl) {
  std::vector<std::uint8_t> bytes;
  encode_ipv4(sample_ipv4(), bytes);
  bytes[0] = (4u << 4) | 4u;  // ihl = 4 words < minimum 5
  EXPECT_FALSE(decode_ipv4(bytes).has_value());
}

TEST(Ipv4, DecodeRejectsTotalLengthBelowHeader) {
  auto header = sample_ipv4();
  header.total_length = 10;
  std::vector<std::uint8_t> bytes;
  encode_ipv4(header, bytes);
  EXPECT_FALSE(decode_ipv4(bytes).has_value());
}

TEST(Ipv4, DecodeRejectsTruncatedInput) {
  std::vector<std::uint8_t> bytes;
  encode_ipv4(sample_ipv4(), bytes);
  bytes.resize(Ipv4Header::kMinSize - 1);
  EXPECT_FALSE(decode_ipv4(bytes).has_value());
}

TEST(Ipv4, OptionsLengthHandled) {
  auto header = sample_ipv4();
  header.ihl = 6;  // 24-byte header with one option word
  header.total_length = 44;
  std::vector<std::uint8_t> bytes;
  encode_ipv4(header, bytes);
  ASSERT_EQ(bytes.size(), 24u);
  const auto decoded = decode_ipv4(bytes, true);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header_length(), 24u);
}

TEST(Ipv4, FragmentFieldsRoundTrip) {
  auto header = sample_ipv4();
  header.dont_fragment = false;
  header.more_fragments = true;
  header.fragment_offset = 0x1234 & 0x1fff;
  std::vector<std::uint8_t> bytes;
  encode_ipv4(header, bytes);
  const auto decoded = decode_ipv4(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->more_fragments);
  EXPECT_EQ(decoded->fragment_offset, header.fragment_offset);
  EXPECT_TRUE(decoded->is_later_fragment());
}

TcpHeader sample_tcp() {
  TcpHeader header;
  header.source_port = 44321;
  header.destination_port = 443;
  header.sequence = 0xdeadbeef;
  header.acknowledgment = 0;
  header.flags = flag_bit(TcpFlag::kSyn);
  header.window = 29200;
  header.checksum = 0x1234;
  return header;
}

TEST(Tcp, EncodeDecodeRoundTrip) {
  const auto header = sample_tcp();
  std::vector<std::uint8_t> bytes;
  encode_tcp(header, bytes);
  ASSERT_EQ(bytes.size(), TcpHeader::kMinSize);

  const auto decoded = decode_tcp(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source_port, header.source_port);
  EXPECT_EQ(decoded->destination_port, header.destination_port);
  EXPECT_EQ(decoded->sequence, header.sequence);
  EXPECT_EQ(decoded->flags, header.flags);
  EXPECT_EQ(decoded->window, header.window);
  EXPECT_EQ(decoded->checksum, header.checksum);
}

TEST(Tcp, SynProbePredicate) {
  TcpHeader header;
  header.flags = flag_bit(TcpFlag::kSyn);
  EXPECT_TRUE(header.is_syn_probe());
  header.flags = flag_bit(TcpFlag::kSyn) | flag_bit(TcpFlag::kAck);
  EXPECT_FALSE(header.is_syn_probe());
  EXPECT_TRUE(header.is_syn_ack());
  header.flags = flag_bit(TcpFlag::kRst);
  EXPECT_FALSE(header.is_syn_probe());
  EXPECT_TRUE(header.has(TcpFlag::kRst));
}

TEST(Tcp, XmasAndNullPredicates) {
  TcpHeader header;
  header.flags = 0x3f;
  EXPECT_TRUE(header.is_xmas());
  EXPECT_FALSE(header.is_null());
  header.flags = 0;
  EXPECT_TRUE(header.is_null());
  EXPECT_FALSE(header.is_xmas());
  header.flags = flag_bit(TcpFlag::kSyn);
  EXPECT_FALSE(header.is_xmas());
  EXPECT_FALSE(header.is_null());
}

TEST(Tcp, DecodeRejectsBadDataOffset) {
  std::vector<std::uint8_t> bytes;
  encode_tcp(sample_tcp(), bytes);
  bytes[12] = 4u << 4;  // below minimum of 5 words
  EXPECT_FALSE(decode_tcp(bytes).has_value());
  bytes[12] = 15u << 4;  // 60-byte header, but only 20 bytes present
  EXPECT_FALSE(decode_tcp(bytes).has_value());
}

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpHeader header;
  header.source_port = 53;
  header.destination_port = 5353;
  header.length = 20;
  header.checksum = 0xbeef;
  std::vector<std::uint8_t> bytes;
  encode_udp(header, bytes);
  const auto decoded = decode_udp(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source_port, 53);
  EXPECT_EQ(decoded->destination_port, 5353);
  EXPECT_EQ(decoded->length, 20);
}

TEST(Udp, RejectsLengthBelowHeader) {
  UdpHeader header;
  header.length = 7;
  std::vector<std::uint8_t> bytes;
  encode_udp(header, bytes);
  EXPECT_FALSE(decode_udp(bytes).has_value());
}

TEST(Icmp, EncodeDecodeRoundTrip) {
  IcmpHeader header;
  header.type = 3;  // destination unreachable
  header.code = 1;
  header.rest = 0xcafef00d;
  std::vector<std::uint8_t> bytes;
  encode_icmp(header, bytes);
  const auto decoded = decode_icmp(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, 3);
  EXPECT_EQ(decoded->code, 1);
  EXPECT_EQ(decoded->rest, 0xcafef00d);
}

TEST(Headers, RandomizedRoundTripSweep) {
  simgen::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    TcpHeader header;
    header.source_port = rng.next_u16();
    header.destination_port = rng.next_u16();
    header.sequence = rng.next_u32();
    header.acknowledgment = rng.next_u32();
    header.flags = static_cast<std::uint8_t>(rng.uniform(64));
    header.window = rng.next_u16();
    header.checksum = rng.next_u16();
    header.urgent_pointer = rng.next_u16();
    std::vector<std::uint8_t> bytes;
    encode_tcp(header, bytes);
    const auto decoded = decode_tcp(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->source_port, header.source_port);
    EXPECT_EQ(decoded->destination_port, header.destination_port);
    EXPECT_EQ(decoded->sequence, header.sequence);
    EXPECT_EQ(decoded->acknowledgment, header.acknowledgment);
    EXPECT_EQ(decoded->flags, header.flags);
    EXPECT_EQ(decoded->window, header.window);
    EXPECT_EQ(decoded->urgent_pointer, header.urgent_pointer);
  }
}

}  // namespace
}  // namespace synscan::net
