#include "pcap/pcap.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

namespace fs = std::filesystem;

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_pcap_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path path(const char* name) const { return dir_ / name; }

  static net::RawFrame frame(net::TimeUs t, std::initializer_list<std::uint8_t> bytes) {
    net::RawFrame f;
    f.timestamp_us = t;
    f.bytes = bytes;
    return f;
  }

  fs::path dir_;
};

TEST_F(PcapTest, WriteReadRoundTrip) {
  const std::vector<net::RawFrame> frames = {
      frame(1'000'000, {1, 2, 3, 4}),
      frame(2'500'000, {5, 6}),
      frame(2'500'001, {7}),
  };
  write_file(path("roundtrip.pcap"), frames);

  const auto [read, status] = read_file(path("roundtrip.pcap"));
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(read.size(), 3u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(read[i].timestamp_us, frames[i].timestamp_us);
    EXPECT_EQ(read[i].bytes, frames[i].bytes);
  }
}

TEST_F(PcapTest, EmptyCaptureIsValid) {
  write_file(path("empty.pcap"), {});
  const auto [read, status] = read_file(path("empty.pcap"));
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_TRUE(read.empty());
}

TEST_F(PcapTest, ReaderExposesFileInfo) {
  write_file(path("info.pcap"), {}, LinkType::kEthernet);
  auto reader = Reader::open(path("info.pcap"));
  EXPECT_FALSE(reader.info().big_endian);
  EXPECT_FALSE(reader.info().nanosecond);
  EXPECT_EQ(reader.info().version_major, 2);
  EXPECT_EQ(reader.info().version_minor, 4);
  EXPECT_EQ(reader.info().link_type, LinkType::kEthernet);
  EXPECT_EQ(reader.info().snap_length, 65535u);
}

TEST_F(PcapTest, RejectsUnknownMagic) {
  std::ofstream out(path("garbage.pcap"), std::ios::binary);
  const char junk[32] = "this is not a capture file!";
  out.write(junk, sizeof(junk));
  out.close();
  EXPECT_THROW((void)Reader::open(path("garbage.pcap")), std::runtime_error);
}

TEST_F(PcapTest, RejectsTruncatedGlobalHeader) {
  std::ofstream out(path("short.pcap"), std::ios::binary);
  const char bytes[10] = {};
  out.write(bytes, sizeof(bytes));
  out.close();
  EXPECT_THROW((void)Reader::open(path("short.pcap")), std::runtime_error);
}

TEST_F(PcapTest, TruncatedRecordBodyReported) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3, 4, 5, 6, 7, 8})};
    write_file(path("trunc.pcap"), frames);
  }
  // Chop the last 4 bytes of the packet body.
  const auto size = fs::file_size(path("trunc.pcap"));
  fs::resize_file(path("trunc.pcap"), size - 4);

  const auto [read, status] = read_file(path("trunc.pcap"));
  EXPECT_EQ(status, ReadStatus::kTruncated);
  EXPECT_TRUE(read.empty());
}

TEST_F(PcapTest, TruncatedRecordHeaderReported) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2}), frame(2, {3, 4})};
    write_file(path("trunc2.pcap"), frames);
  }
  const auto size = fs::file_size(path("trunc2.pcap"));
  fs::resize_file(path("trunc2.pcap"), size - 2 - 8);  // into record 2's header

  const auto [read, status] = read_file(path("trunc2.pcap"));
  EXPECT_EQ(status, ReadStatus::kTruncated);
  EXPECT_EQ(read.size(), 1u);  // the first record survived
}

TEST_F(PcapTest, MidHeaderTruncationReportedOnceThenEndOfFile) {
  // A capture killed mid-record-header must yield the readable prefix,
  // report kTruncated exactly once, and then settle on kEndOfFile.
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2}), frame(2, {3, 4})};
    write_file(path("midhdr.pcap"), frames);
  }
  const auto size = fs::file_size(path("midhdr.pcap"));
  fs::resize_file(path("midhdr.pcap"), size - 2 - 9);  // 7 bytes of record 2's header

  auto reader = Reader::open(path("midhdr.pcap"));
  net::RawFrame out;
  ASSERT_EQ(reader.next(out), ReadStatus::kOk);
  EXPECT_EQ(out.bytes, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(reader.next(out), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(out), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.next(out), ReadStatus::kEndOfFile);
}

TEST_F(PcapTest, MidHeaderTruncationBigEndianReportedOnceThenEndOfFile) {
  // Same contract for a swapped-magic (big-endian) capture.
  std::ofstream out(path("midhdr_be.pcap"), std::ios::binary);
  const auto be16 = [&](std::uint16_t v) {
    std::uint8_t b[2];
    net::store_be16(b, v);
    out.write(reinterpret_cast<const char*>(b), 2);
  };
  const auto be32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    net::store_be32(b, v);
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  be32(0xa1b2c3d4);  // written big-endian => swapped magic on disk
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(1);       // Ethernet
  be32(10);      // record 1: ts seconds
  be32(0);       // ts micros
  be32(2);       // captured
  be32(2);       // original
  out.put(0x01);
  out.put(0x02);
  be32(11);      // record 2: 4 of 16 header bytes, then the file ends
  out.close();

  auto reader = Reader::open(path("midhdr_be.pcap"));
  EXPECT_TRUE(reader.info().big_endian);
  net::RawFrame frame;
  ASSERT_EQ(reader.next(frame), ReadStatus::kOk);
  EXPECT_EQ(frame.bytes, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(reader.next(frame), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(frame), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.next(frame), ReadStatus::kEndOfFile);
}

TEST_F(PcapTest, InsaneCapturedLengthIsBadRecord) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3})};
    write_file(path("bad.pcap"), frames);
  }
  // Overwrite the record's captured length with an absurd value.
  std::fstream file(path("bad.pcap"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24 + 8);
  std::uint8_t bytes[4];
  net::store_le32(bytes, 0x7fffffffu);
  file.write(reinterpret_cast<const char*>(bytes), 4);
  file.close();

  const auto [read, status] = read_file(path("bad.pcap"));
  EXPECT_EQ(status, ReadStatus::kBadRecord);
  EXPECT_TRUE(read.empty());
}

TEST_F(PcapTest, CapturedLongerThanOriginalIsBadRecord) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3})};
    write_file(path("bad2.pcap"), frames);
  }
  std::fstream file(path("bad2.pcap"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24 + 12);  // original length field
  std::uint8_t bytes[4];
  net::store_le32(bytes, 1);  // claim original was 1 byte < captured 3
  file.write(reinterpret_cast<const char*>(bytes), 4);
  file.close();

  const auto [read, status] = read_file(path("bad2.pcap"));
  EXPECT_EQ(status, ReadStatus::kBadRecord);
}

TEST_F(PcapTest, SnapLengthTruncatesOnDisk) {
  auto writer = Writer(std::make_unique<std::ofstream>(path("snap.pcap"), std::ios::binary),
                       LinkType::kEthernet, /*snap_length=*/8);
  net::RawFrame big;
  big.timestamp_us = 5'000'000;
  big.bytes.assign(100, 0xaa);
  writer.write(big);
  writer.flush();

  const auto [read, status] = read_file(path("snap.pcap"));
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0].bytes.size(), 8u);  // captured = snap length
}

TEST_F(PcapTest, BigEndianCapturesAreReadable) {
  // Hand-craft a big-endian (swapped-magic) capture with one record.
  std::ofstream out(path("be.pcap"), std::ios::binary);
  const auto be16 = [&](std::uint16_t v) {
    std::uint8_t b[2];
    net::store_be16(b, v);
    out.write(reinterpret_cast<const char*>(b), 2);
  };
  const auto be32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    net::store_be32(b, v);
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  be32(0xa1b2c3d4);  // written big-endian => reader sees swapped magic
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(1);           // Ethernet
  be32(10);          // ts seconds
  be32(250000);      // ts micros
  be32(3);           // captured
  be32(3);           // original
  out.put(1);
  out.put(2);
  out.put(3);
  out.close();

  auto reader = Reader::open(path("be.pcap"));
  EXPECT_TRUE(reader.info().big_endian);
  net::RawFrame frame;
  ASSERT_EQ(reader.next(frame), ReadStatus::kOk);
  EXPECT_EQ(frame.timestamp_us, 10 * net::kMicrosPerSecond + 250000);
  EXPECT_EQ(frame.bytes, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(reader.next(frame), ReadStatus::kEndOfFile);
}

TEST_F(PcapTest, NanosecondCapturesNormalizeToMicros) {
  std::ofstream out(path("ns.pcap"), std::ios::binary);
  const auto le16 = [&](std::uint16_t v) {
    std::uint8_t b[2];
    net::store_le16(b, v);
    out.write(reinterpret_cast<const char*>(b), 2);
  };
  const auto le32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    net::store_le32(b, v);
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  le32(0xa1b23c4d);  // nanosecond magic
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(1);
  le32(7);          // seconds
  le32(123456789);  // nanos -> 123456 micros
  le32(1);
  le32(1);
  out.put(0x42);
  out.close();

  auto reader = Reader::open(path("ns.pcap"));
  EXPECT_TRUE(reader.info().nanosecond);
  net::RawFrame frame;
  ASSERT_EQ(reader.next(frame), ReadStatus::kOk);
  EXPECT_EQ(frame.timestamp_us, 7 * net::kMicrosPerSecond + 123456);
}

TEST_F(PcapTest, FramesWrittenAndReadCountersTrack) {
  auto writer = Writer::create(path("count.pcap"));
  for (int i = 0; i < 5; ++i) writer.write(frame(i, {static_cast<std::uint8_t>(i)}));
  writer.flush();
  EXPECT_EQ(writer.frames_written(), 5u);

  auto reader = Reader::open(path("count.pcap"));
  auto [frames, status] = reader.read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.frames_read(), 5u);
}

TEST_F(PcapTest, OpenMissingFileThrows) {
  EXPECT_THROW((void)Reader::open(path("does-not-exist.pcap")), std::runtime_error);
}

}  // namespace
}  // namespace synscan::pcap
