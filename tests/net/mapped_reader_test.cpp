#include "pcap/mapped_reader.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

namespace fs = std::filesystem;

class MappedReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_mapped_reader_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path path(const char* name) const { return dir_ / name; }

  static net::RawFrame frame(net::TimeUs t, std::initializer_list<std::uint8_t> bytes) {
    net::RawFrame f;
    f.timestamp_us = t;
    f.bytes = bytes;
    return f;
  }

  fs::path dir_;
};

TEST_F(MappedReaderTest, MapsRegularFilesAndMatchesReader) {
  const std::vector<net::RawFrame> frames = {
      frame(1'000'000, {1, 2, 3, 4}),
      frame(2'500'000, {5, 6}),
      frame(2'500'001, {7}),
  };
  write_file(path("basic.pcap"), frames);

  auto reader = MappedReader::open(path("basic.pcap"));
  EXPECT_TRUE(reader.mapped());
  EXPECT_EQ(reader.info().link_type, LinkType::kEthernet);

  net::FrameView view;
  for (const auto& expected : frames) {
    ASSERT_EQ(reader.next(view), ReadStatus::kOk);
    EXPECT_EQ(view.timestamp_us, expected.timestamp_us);
    EXPECT_EQ(std::vector<std::uint8_t>(view.bytes.begin(), view.bytes.end()),
              expected.bytes);
  }
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.frames_read(), 3u);
}

TEST_F(MappedReaderTest, StreamFallbackWalksIdentically) {
  const std::vector<net::RawFrame> frames = {frame(5, {9, 8, 7}), frame(6, {1})};
  write_file(path("stream.pcap"), frames);

  std::ifstream stream(path("stream.pcap"), std::ios::binary);
  auto reader = MappedReader::open_stream(stream);
  EXPECT_FALSE(reader.mapped());

  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.bytes.size(), 3u);
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.bytes.size(), 1u);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, EmptyCaptureIsValid) {
  write_file(path("empty.pcap"), {});
  auto reader = MappedReader::open(path("empty.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, ThrowsOnUnknownMagicAndShortHeader) {
  {
    std::ofstream out(path("junk.pcap"), std::ios::binary);
    const char junk[32] = "this is not a capture file!";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW((void)MappedReader::open(path("junk.pcap")), std::runtime_error);
  {
    std::ofstream out(path("short.pcap"), std::ios::binary);
    const char bytes[10] = {};
    out.write(bytes, sizeof(bytes));
  }
  EXPECT_THROW((void)MappedReader::open(path("short.pcap")), std::runtime_error);
  EXPECT_THROW((void)MappedReader::open(path("missing.pcap")), std::runtime_error);
}

TEST_F(MappedReaderTest, MidHeaderTruncationReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2}), frame(2, {3, 4})};
    write_file(path("midhdr.pcap"), frames);
  }
  const auto size = fs::file_size(path("midhdr.pcap"));
  fs::resize_file(path("midhdr.pcap"), size - 2 - 9);  // 7 bytes of record 2's header

  auto reader = MappedReader::open(path("midhdr.pcap"));
  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, MidBodyTruncationReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3, 4, 5, 6, 7, 8})};
    write_file(path("midbody.pcap"), frames);
  }
  const auto size = fs::file_size(path("midbody.pcap"));
  fs::resize_file(path("midbody.pcap"), size - 4);

  auto reader = MappedReader::open(path("midbody.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, BigEndianMidHeaderTruncationMatchesContract) {
  std::ofstream out(path("midhdr_be.pcap"), std::ios::binary);
  const auto be16 = [&](std::uint16_t v) {
    std::uint8_t b[2];
    net::store_be16(b, v);
    out.write(reinterpret_cast<const char*>(b), 2);
  };
  const auto be32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    net::store_be32(b, v);
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  be32(0xa1b2c3d4);
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(1);
  be32(10);  // record 1
  be32(0);
  be32(2);
  be32(2);
  out.put(0x01);
  out.put(0x02);
  be32(11);  // 4 of record 2's 16 header bytes
  out.close();

  auto reader = MappedReader::open(path("midhdr_be.pcap"));
  EXPECT_TRUE(reader.info().big_endian);
  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.timestamp_us, 10 * net::kMicrosPerSecond);
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, BadRecordReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3})};
    write_file(path("bad.pcap"), frames);
  }
  std::fstream file(path("bad.pcap"), std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24 + 8);
  std::uint8_t bytes[4];
  net::store_le32(bytes, 0x7fffffffu);
  file.write(reinterpret_cast<const char*>(bytes), 4);
  file.close();

  auto reader = MappedReader::open(path("bad.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kBadRecord);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, NextBatchChunksAndPreservesOrder) {
  std::vector<net::RawFrame> frames;
  for (std::uint8_t i = 0; i < 10; ++i) {
    frames.push_back(frame(i, {i, static_cast<std::uint8_t>(i + 1)}));
  }
  write_file(path("batch.pcap"), frames);

  auto reader = MappedReader::open(path("batch.pcap"));
  std::vector<net::FrameView> batch;
  std::size_t seen = 0;
  ReadStatus status;
  while ((status = reader.next_batch(batch, 4)) == ReadStatus::kOk) {
    EXPECT_LE(batch.size(), 4u);
    for (const auto& view : batch) {
      EXPECT_EQ(view.timestamp_us, static_cast<net::TimeUs>(seen));
      EXPECT_EQ(view.bytes[0], static_cast<std::uint8_t>(seen));
      ++seen;
    }
  }
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(batch.empty());
}

TEST_F(MappedReaderTest, NextBatchOwesTerminalStatusAfterPartialBatch) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1}), frame(2, {2}),
                                               frame(3, {3})};
    write_file(path("owed.pcap"), frames);
  }
  const auto size = fs::file_size(path("owed.pcap"));
  fs::resize_file(path("owed.pcap"), size - 1 - 8);  // into record 3's header

  auto reader = MappedReader::open(path("owed.pcap"));
  std::vector<net::FrameView> batch;
  // All readable frames arrive as one kOk batch; the truncation is owed
  // to the next call, and after that the reader settles on kEndOfFile.
  ASSERT_EQ(reader.next_batch(batch, 8), ReadStatus::kOk);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(reader.next_batch(batch, 8), ReadStatus::kTruncated);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(reader.next_batch(batch, 8), ReadStatus::kEndOfFile);
}

}  // namespace
}  // namespace synscan::pcap
