#include "pcap/mapped_reader.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

namespace fs = std::filesystem;

class MappedReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, so a
    // shared directory would let one case's TearDown delete another's
    // capture mid-read.
    dir_ = fs::temp_directory_path() /
           (std::string("synscan_mapped_reader_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path path(const char* name) const { return dir_ / name; }

  static net::RawFrame frame(net::TimeUs t, std::initializer_list<std::uint8_t> bytes) {
    net::RawFrame f;
    f.timestamp_us = t;
    f.bytes = bytes;
    return f;
  }

  fs::path dir_;
};

TEST_F(MappedReaderTest, MapsRegularFilesAndMatchesReader) {
  const std::vector<net::RawFrame> frames = {
      frame(1'000'000, {1, 2, 3, 4}),
      frame(2'500'000, {5, 6}),
      frame(2'500'001, {7}),
  };
  write_file(path("basic.pcap"), frames);

  auto reader = MappedReader::open(path("basic.pcap"));
  EXPECT_TRUE(reader.mapped());
  EXPECT_EQ(reader.info().link_type, LinkType::kEthernet);

  net::FrameView view;
  for (const auto& expected : frames) {
    ASSERT_EQ(reader.next(view), ReadStatus::kOk);
    EXPECT_EQ(view.timestamp_us, expected.timestamp_us);
    EXPECT_EQ(std::vector<std::uint8_t>(view.bytes.begin(), view.bytes.end()),
              expected.bytes);
  }
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.frames_read(), 3u);
}

TEST_F(MappedReaderTest, StreamFallbackWalksIdentically) {
  const std::vector<net::RawFrame> frames = {frame(5, {9, 8, 7}), frame(6, {1})};
  write_file(path("stream.pcap"), frames);

  std::ifstream stream(path("stream.pcap"), std::ios::binary);
  auto reader = MappedReader::open_stream(stream);
  EXPECT_FALSE(reader.mapped());

  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.bytes.size(), 3u);
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.bytes.size(), 1u);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, EmptyCaptureIsValid) {
  write_file(path("empty.pcap"), {});
  auto reader = MappedReader::open(path("empty.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, ThrowsOnUnknownMagicAndShortHeader) {
  {
    std::ofstream out(path("junk.pcap"), std::ios::binary);
    const char junk[32] = "this is not a capture file!";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW((void)MappedReader::open(path("junk.pcap")), std::runtime_error);
  {
    std::ofstream out(path("short.pcap"), std::ios::binary);
    const char bytes[10] = {};
    out.write(bytes, sizeof(bytes));
  }
  EXPECT_THROW((void)MappedReader::open(path("short.pcap")), std::runtime_error);
  EXPECT_THROW((void)MappedReader::open(path("missing.pcap")), std::runtime_error);
}

TEST_F(MappedReaderTest, MidHeaderTruncationReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2}), frame(2, {3, 4})};
    write_file(path("midhdr.pcap"), frames);
  }
  const auto size = fs::file_size(path("midhdr.pcap"));
  fs::resize_file(path("midhdr.pcap"), size - 2 - 9);  // 7 bytes of record 2's header

  auto reader = MappedReader::open(path("midhdr.pcap"));
  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, MidBodyTruncationReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3, 4, 5, 6, 7, 8})};
    write_file(path("midbody.pcap"), frames);
  }
  const auto size = fs::file_size(path("midbody.pcap"));
  fs::resize_file(path("midbody.pcap"), size - 4);

  auto reader = MappedReader::open(path("midbody.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, BigEndianMidHeaderTruncationMatchesContract) {
  std::ofstream out(path("midhdr_be.pcap"), std::ios::binary);
  const auto be16 = [&](std::uint16_t v) {
    std::uint8_t b[2];
    net::store_be16(b, v);
    out.write(reinterpret_cast<const char*>(b), 2);
  };
  const auto be32 = [&](std::uint32_t v) {
    std::uint8_t b[4];
    net::store_be32(b, v);
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  be32(0xa1b2c3d4);
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(1);
  be32(10);  // record 1
  be32(0);
  be32(2);
  be32(2);
  out.put(0x01);
  out.put(0x02);
  be32(11);  // 4 of record 2's 16 header bytes
  out.close();

  auto reader = MappedReader::open(path("midhdr_be.pcap"));
  EXPECT_TRUE(reader.info().big_endian);
  net::FrameView view;
  ASSERT_EQ(reader.next(view), ReadStatus::kOk);
  EXPECT_EQ(view.timestamp_us, 10 * net::kMicrosPerSecond);
  EXPECT_EQ(reader.next(view), ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, BadRecordReportedOnceThenEndOfFile) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1, 2, 3})};
    write_file(path("bad.pcap"), frames);
  }
  std::fstream file(path("bad.pcap"), std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24 + 8);
  std::uint8_t bytes[4];
  net::store_le32(bytes, 0x7fffffffu);
  file.write(reinterpret_cast<const char*>(bytes), 4);
  file.close();

  auto reader = MappedReader::open(path("bad.pcap"));
  net::FrameView view;
  EXPECT_EQ(reader.next(view), ReadStatus::kBadRecord);
  EXPECT_EQ(reader.next(view), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, NextBatchChunksAndPreservesOrder) {
  std::vector<net::RawFrame> frames;
  for (std::uint8_t i = 0; i < 10; ++i) {
    frames.push_back(frame(i, {i, static_cast<std::uint8_t>(i + 1)}));
  }
  write_file(path("batch.pcap"), frames);

  auto reader = MappedReader::open(path("batch.pcap"));
  std::vector<net::FrameView> batch;
  std::size_t seen = 0;
  ReadStatus status;
  while ((status = reader.next_batch(batch, 4)) == ReadStatus::kOk) {
    EXPECT_LE(batch.size(), 4u);
    for (const auto& view : batch) {
      EXPECT_EQ(view.timestamp_us, static_cast<net::TimeUs>(seen));
      EXPECT_EQ(view.bytes[0], static_cast<std::uint8_t>(seen));
      ++seen;
    }
  }
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(batch.empty());
}

TEST_F(MappedReaderTest, NextBatchOwesTerminalStatusAfterPartialBatch) {
  {
    const std::vector<net::RawFrame> frames = {frame(1, {1}), frame(2, {2}),
                                               frame(3, {3})};
    write_file(path("owed.pcap"), frames);
  }
  const auto size = fs::file_size(path("owed.pcap"));
  fs::resize_file(path("owed.pcap"), size - 1 - 8);  // into record 3's header

  auto reader = MappedReader::open(path("owed.pcap"));
  std::vector<net::FrameView> batch;
  // All readable frames arrive as one kOk batch; the truncation is owed
  // to the next call, and after that the reader settles on kEndOfFile.
  ASSERT_EQ(reader.next_batch(batch, 8), ReadStatus::kOk);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(reader.next_batch(batch, 8), ReadStatus::kTruncated);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(reader.next_batch(batch, 8), ReadStatus::kEndOfFile);
}

TEST_F(MappedReaderTest, PartitionSplitsOnRecordBoundariesAndCoversEveryRecord) {
  std::vector<net::RawFrame> frames;
  for (std::uint32_t i = 0; i < 97; ++i) {
    // Varying lengths so chunk boundaries cannot fall on a fixed stride.
    frames.push_back(frame(i, {}));
    frames.back().bytes.assign(1 + i % 13, static_cast<std::uint8_t>(i));
  }
  write_file(path("partition.pcap"), frames);

  auto reader = MappedReader::open(path("partition.pcap"));
  const auto chunks = reader.partition(5);
  ASSERT_GE(chunks.size(), 2u);
  ASSERT_LE(chunks.size(), 5u);

  // Contiguous cover of the record region, first to last byte.
  EXPECT_EQ(chunks.front().begin, kGlobalHeaderSize);
  EXPECT_EQ(chunks.back().end, reader.byte_size());
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].begin, chunks[i - 1].end) << "gap before chunk " << i;
  }

  // Scanning the chunks in order yields the serial frame sequence.
  std::size_t seen = 0;
  for (const auto& chunk : chunks) {
    ChunkReader scanner(reader.bytes(), reader.info(), chunk);
    const auto status = scanner.scan([&](net::TimeUs timestamp_us,
                                         const std::uint8_t* data,
                                         std::uint32_t captured_length) {
      ASSERT_LT(seen, frames.size());
      EXPECT_EQ(timestamp_us, frames[seen].timestamp_us);
      ASSERT_EQ(captured_length, frames[seen].bytes.size());
      EXPECT_EQ(std::vector<std::uint8_t>(data, data + captured_length),
                frames[seen].bytes);
      ++seen;
    });
    EXPECT_EQ(status, ReadStatus::kEndOfFile);
  }
  EXPECT_EQ(seen, frames.size());
}

TEST_F(MappedReaderTest, PartitionDegeneratesToOneChunkOnTinyOrEmptyCaptures) {
  const std::vector<net::RawFrame> tiny = {frame(1, {1, 2, 3})};
  write_file(path("tiny.pcap"), tiny);
  auto reader = MappedReader::open(path("tiny.pcap"));
  const auto chunks = reader.partition(8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, kGlobalHeaderSize);
  EXPECT_EQ(chunks[0].end, reader.byte_size());

  write_file(path("empty2.pcap"), {});
  auto empty = MappedReader::open(path("empty2.pcap"));
  const auto none = empty.partition(8);
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0].begin, none[0].end);
}

TEST_F(MappedReaderTest, PartitionConfinesTruncationToTheFinalChunk) {
  std::vector<net::RawFrame> frames;
  for (std::uint32_t i = 0; i < 64; ++i) {
    frames.push_back(frame(i, {}));
    frames.back().bytes.assign(32, static_cast<std::uint8_t>(i));
  }
  write_file(path("trunc_chunks.pcap"), frames);
  const auto size = fs::file_size(path("trunc_chunks.pcap"));
  fs::resize_file(path("trunc_chunks.pcap"), size - 7);  // cut into the last body

  auto reader = MappedReader::open(path("trunc_chunks.pcap"));
  const auto chunks = reader.partition(4);
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_EQ(chunks.back().end, reader.byte_size());

  std::size_t seen = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    ChunkReader scanner(reader.bytes(), reader.info(), chunks[i]);
    const auto status = scanner.scan(
        [&](net::TimeUs, const std::uint8_t*, std::uint32_t) { ++seen; });
    // Every chunk but the last ends exactly on a record boundary; only
    // the final chunk may carry the defect.
    if (i + 1 < chunks.size()) {
      EXPECT_EQ(status, ReadStatus::kEndOfFile) << "chunk " << i;
    } else {
      EXPECT_EQ(status, ReadStatus::kTruncated);
    }
  }
  EXPECT_EQ(seen, frames.size() - 1);
}

TEST_F(MappedReaderTest, ChunkScanAndNextBatchAgree) {
  std::vector<net::RawFrame> frames;
  for (std::uint32_t i = 0; i < 40; ++i) {
    frames.push_back(frame(1000 + i, {}));
    frames.back().bytes.assign(1 + i % 7, static_cast<std::uint8_t>(i));
  }
  write_file(path("scan_agree.pcap"), frames);

  auto reader = MappedReader::open(path("scan_agree.pcap"));
  const ScanChunk whole{kGlobalHeaderSize,
                        static_cast<std::size_t>(reader.byte_size())};

  std::vector<net::TimeUs> scanned;
  ChunkReader fused(reader.bytes(), reader.info(), whole);
  EXPECT_EQ(fused.scan([&](net::TimeUs timestamp_us, const std::uint8_t*,
                           std::uint32_t) { scanned.push_back(timestamp_us); }),
            ReadStatus::kEndOfFile);
  EXPECT_EQ(fused.frames_read(), frames.size());
  // A second scan on the same reader is a no-op, not a rewind.
  EXPECT_EQ(fused.scan([&](net::TimeUs, const std::uint8_t*, std::uint32_t) {
    FAIL() << "scan must not restart an exhausted chunk";
  }),
            ReadStatus::kEndOfFile);

  std::vector<net::TimeUs> batched;
  ChunkReader stepper(reader.bytes(), reader.info(), whole);
  std::vector<net::FrameView> views;
  ReadStatus status;
  while ((status = stepper.next_batch(views, 7)) == ReadStatus::kOk) {
    for (const auto& view : views) batched.push_back(view.timestamp_us);
  }
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_EQ(batched, scanned);
}

}  // namespace
}  // namespace synscan::pcap
