#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace synscan::net {
namespace {

TEST(Ipv4Address, DefaultIsZero) {
  EXPECT_EQ(Ipv4Address().value(), 0u);
  EXPECT_EQ(Ipv4Address().to_string(), "0.0.0.0");
}

TEST(Ipv4Address, FromOctetsRoundTrips) {
  const auto addr = Ipv4Address::from_octets(192, 0, 2, 33);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 0);
  EXPECT_EQ(addr.octet(2), 2);
  EXPECT_EQ(addr.octet(3), 33);
  EXPECT_EQ(addr.to_string(), "192.0.2.33");
}

TEST(Ipv4Address, ParseValid) {
  const auto addr = Ipv4Address::parse("10.20.30.40");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "10.20.30.40");
}

TEST(Ipv4Address, ParseBoundaryValues) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xffffffffu);
}

struct ParseCase {
  const char* text;
  bool valid;
};

class Ipv4ParseTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(Ipv4ParseTest, AcceptsExactlyWellFormedInput) {
  EXPECT_EQ(Ipv4Address::parse(GetParam().text).has_value(), GetParam().valid)
      << "input: " << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, Ipv4ParseTest,
    ::testing::Values(ParseCase{"1.2.3.4", true}, ParseCase{"001.002.003.004", true},
                      ParseCase{"256.1.1.1", false}, ParseCase{"1.2.3", false},
                      ParseCase{"1.2.3.4.5", false}, ParseCase{"", false},
                      ParseCase{"1..2.3", false}, ParseCase{"a.b.c.d", false},
                      ParseCase{"1.2.3.4 ", false}, ParseCase{" 1.2.3.4", false},
                      ParseCase{"-1.2.3.4", false}, ParseCase{"1.2.3.+4", false},
                      ParseCase{"1.2.3.999", false}, ParseCase{"1.2.3.4x", false},
                      ParseCase{"0000.1.1.1", false}));

TEST(Ipv4Address, RoundTripsThroughString) {
  for (const std::uint32_t value : {0u, 1u, 0x01020304u, 0xc0a80101u, 0xffffffffu}) {
    const Ipv4Address addr(value);
    const auto reparsed = Ipv4Address::parse(addr.to_string());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->value(), value);
  }
}

TEST(Ipv4Address, Slash16Buckets) {
  EXPECT_EQ(Ipv4Address::from_octets(198, 51, 0, 1).slash16(), (198u << 8) | 51u);
  EXPECT_EQ(Ipv4Address::from_octets(198, 51, 255, 255).slash16(),
            Ipv4Address::from_octets(198, 51, 0, 0).slash16());
  EXPECT_NE(Ipv4Address::from_octets(198, 51, 0, 0).slash16(),
            Ipv4Address::from_octets(198, 52, 0, 0).slash16());
}

TEST(Ipv4Address, Slash24Buckets) {
  EXPECT_EQ(Ipv4Address::from_octets(1, 2, 3, 4).slash24(),
            Ipv4Address::from_octets(1, 2, 3, 200).slash24());
  EXPECT_NE(Ipv4Address::from_octets(1, 2, 3, 4).slash24(),
            Ipv4Address::from_octets(1, 2, 4, 4).slash24());
}

TEST(Ipv4Address, ReservedSources) {
  EXPECT_TRUE(Ipv4Address::from_octets(0, 1, 2, 3).is_reserved_source());
  EXPECT_TRUE(Ipv4Address::from_octets(127, 0, 0, 1).is_reserved_source());
  EXPECT_TRUE(Ipv4Address::from_octets(224, 0, 0, 1).is_reserved_source());
  EXPECT_TRUE(Ipv4Address::from_octets(255, 255, 255, 255).is_reserved_source());
  EXPECT_FALSE(Ipv4Address::from_octets(8, 8, 8, 8).is_reserved_source());
  EXPECT_FALSE(Ipv4Address::from_octets(223, 255, 255, 255).is_reserved_source());
}

TEST(Ipv4Address, PrivateRanges) {
  EXPECT_TRUE(Ipv4Address::from_octets(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address::from_octets(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address::from_octets(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Address::from_octets(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address::from_octets(192, 168, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address::from_octets(192, 169, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address::from_octets(11, 0, 0, 1).is_private());
}

TEST(Ipv4Address, OrderingFollowsNumericValue) {
  EXPECT_LT(Ipv4Address::from_octets(1, 0, 0, 0), Ipv4Address::from_octets(2, 0, 0, 0));
  EXPECT_LT(Ipv4Address::from_octets(1, 2, 3, 4), Ipv4Address::from_octets(1, 2, 3, 5));
}

TEST(Ipv4Address, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  const std::hash<Ipv4Address> hasher;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(hasher(Ipv4Address(0x0a000000u + i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small sequential run
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix prefix(Ipv4Address::from_octets(198, 51, 100, 77), 16);
  EXPECT_EQ(prefix.base().to_string(), "198.51.0.0");
  EXPECT_EQ(prefix.to_string(), "198.51.0.0/16");
}

TEST(Ipv4Prefix, SizeByLength) {
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 32).size(), 1u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 24).size(), 256u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 16).size(), 65536u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 0).size(), std::uint64_t{1} << 32);
}

TEST(Ipv4Prefix, ContainsItsRangeOnly) {
  const auto prefix = Ipv4Prefix::parse("198.51.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(Ipv4Address::from_octets(198, 51, 0, 0)));
  EXPECT_TRUE(prefix->contains(Ipv4Address::from_octets(198, 51, 255, 255)));
  EXPECT_FALSE(prefix->contains(Ipv4Address::from_octets(198, 52, 0, 0)));
  EXPECT_FALSE(prefix->contains(Ipv4Address::from_octets(198, 50, 255, 255)));
}

TEST(Ipv4Prefix, ZeroLengthContainsEverything) {
  const Ipv4Prefix all(Ipv4Address(), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(0u)));
  EXPECT_TRUE(all.contains(Ipv4Address(0xffffffffu)));
}

TEST(Ipv4Prefix, AtIndexesAddresses) {
  const auto prefix = Ipv4Prefix::parse("10.0.0.0/24");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(prefix->at(255).to_string(), "10.0.0.255");
}

TEST(Ipv4Prefix, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/8x").has_value());
}

TEST(Ipv4Prefix, ParseAcceptsFullRange) {
  for (int len = 0; len <= 32; ++len) {
    const auto text = "10.0.0.0/" + std::to_string(len);
    EXPECT_TRUE(Ipv4Prefix::parse(text).has_value()) << text;
  }
}

}  // namespace
}  // namespace synscan::net
