#include "net/checksum.h"

#include <gtest/gtest.h>

#include "simgen/rng.h"

namespace synscan::net {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // The classic worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
  // sum to ddf2 with carries; checksum is its complement 220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyInputIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLengthPadsTrailingByte) {
  const std::uint8_t even[] = {0xab, 0x00};
  const std::uint8_t odd[] = {0xab};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, VerificationFoldsToZero) {
  // Appending the computed checksum to the data makes the one's-complement
  // sum equal 0xffff, i.e. finish() == 0.
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x28, 0x1c, 0x46,
                                    0x40, 0x00, 0x40, 0x06};
  const auto checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  ChecksumAccumulator split;
  split.add(std::span<const std::uint8_t>(data).first(32));
  split.add(std::span<const std::uint8_t>(data).subspan(32));
  EXPECT_EQ(split.finish(), internet_checksum(data));
}

TEST(Checksum, SingleBitFlipsAreDetected) {
  simgen::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(40);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto original = internet_checksum(data);
    const auto byte = rng.uniform(data.size());
    const auto bit = rng.uniform(8);
    data[byte] = static_cast<std::uint8_t>(data[byte] ^ (1u << bit));
    EXPECT_NE(internet_checksum(data), original)
        << "flip of byte " << byte << " bit " << bit << " went undetected";
  }
}

TEST(TransportChecksum, CoversPseudoHeader) {
  const auto src = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto dst = Ipv4Address::from_octets(10, 0, 0, 2);
  const std::uint8_t segment[] = {0x00, 0x50, 0x01, 0xbb, 0, 0, 0, 0,
                                  0,    0,    0,    0,    0, 0, 0, 0,
                                  0x50, 0x02, 0xff, 0xff, 0, 0, 0, 0};
  const auto base = transport_checksum(src, dst, 6, segment);
  // Changing any pseudo-header input must change the checksum.
  EXPECT_NE(transport_checksum(Ipv4Address::from_octets(10, 0, 0, 3), dst, 6, segment),
            base);
  EXPECT_NE(transport_checksum(src, Ipv4Address::from_octets(10, 0, 0, 9), 6, segment),
            base);
  EXPECT_NE(transport_checksum(src, dst, 17, segment), base);
}

TEST(TransportChecksum, IsOrderSensitiveInAddresses) {
  const auto a = Ipv4Address::from_octets(1, 2, 3, 4);
  const auto b = Ipv4Address::from_octets(5, 6, 7, 8);
  const std::uint8_t segment[] = {1, 2, 3, 4};
  // Pseudo-header sums src and dst words; swapping them keeps the sum.
  // This is a known property of the one's-complement sum; assert it so a
  // future "fix" doesn't silently change wire behavior.
  EXPECT_EQ(transport_checksum(a, b, 6, segment), transport_checksum(b, a, 6, segment));
}

}  // namespace
}  // namespace synscan::net
