#include "net/mac.h"

#include <gtest/gtest.h>

namespace synscan::net {
namespace {

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto mac = MacAddress::parse("02:00:5e:10:ff:01");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:5e:10:ff:01");
}

TEST(MacAddress, ParseAcceptsUppercase) {
  const auto mac = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ff").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ff:01:02").has_value());
  EXPECT_FALSE(MacAddress::parse("02-00-5e-10-ff-01").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:00:00:00:00:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:ff:0").has_value());
}

TEST(MacAddress, BroadcastDetection) {
  EXPECT_TRUE(MacAddress::parse("ff:ff:ff:ff:ff:ff")->is_broadcast());
  EXPECT_FALSE(MacAddress::parse("ff:ff:ff:ff:ff:fe")->is_broadcast());
}

TEST(MacAddress, MulticastBit) {
  EXPECT_TRUE(MacAddress::parse("01:00:5e:00:00:01")->is_multicast());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:00:00:01")->is_multicast());
}

TEST(MacAddress, LocalAddressesAreUnicastAndDistinct) {
  const auto a = MacAddress::local(1);
  const auto b = MacAddress::local(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_FALSE(a.is_broadcast());
  // Locally administered bit set.
  EXPECT_EQ(a.octets()[0] & 0x02, 0x02);
}

TEST(MacAddress, LocalEncodesIdInLowOctets) {
  const auto mac = MacAddress::local(0x01020304u);
  EXPECT_EQ(mac.octets()[2], 0x01);
  EXPECT_EQ(mac.octets()[3], 0x02);
  EXPECT_EQ(mac.octets()[4], 0x03);
  EXPECT_EQ(mac.octets()[5], 0x04);
}

}  // namespace
}  // namespace synscan::net
