#include "net/packet.h"

#include <gtest/gtest.h>

#include "net/checksum.h"

namespace synscan::net {
namespace {

TcpFrameSpec sample_spec() {
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address::from_octets(5, 6, 7, 8);
  spec.dst_ip = Ipv4Address::from_octets(198, 51, 1, 2);
  spec.src_port = 54321;
  spec.dst_port = 443;
  spec.sequence = 0xabad1dea;
  spec.ip_id = 4242;
  return spec;
}

TEST(BuildTcpFrame, ProducesDecodableFrame) {
  const auto frame = build_tcp_frame(sample_spec());
  ASSERT_EQ(frame.size(),
            EthernetHeader::kSize + Ipv4Header::kMinSize + TcpHeader::kMinSize);

  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.source.to_string(), "5.6.7.8");
  EXPECT_EQ(decoded->ip.destination.to_string(), "198.51.1.2");
  ASSERT_NE(decoded->tcp(), nullptr);
  EXPECT_EQ(decoded->tcp()->destination_port, 443);
  EXPECT_EQ(decoded->tcp()->sequence, 0xabad1dea);
  EXPECT_TRUE(decoded->tcp()->is_syn_probe());
  EXPECT_EQ(decoded->ip.identification, 4242);
  EXPECT_EQ(decoded->payload_length, 0u);
}

TEST(BuildTcpFrame, ChecksumsAreValid) {
  const auto frame = build_tcp_frame(sample_spec());
  EXPECT_TRUE(verify_tcp_checksum(frame));
  // And the IP header checksum folds to zero.
  const std::span<const std::uint8_t> ip_bytes{frame.data() + EthernetHeader::kSize,
                                               Ipv4Header::kMinSize};
  EXPECT_EQ(internet_checksum(ip_bytes), 0);
}

TEST(BuildTcpFrame, CorruptionBreaksChecksumVerification) {
  auto frame = build_tcp_frame(sample_spec());
  frame[EthernetHeader::kSize + Ipv4Header::kMinSize + 4] ^= 0x40;  // seq bit
  EXPECT_FALSE(verify_tcp_checksum(frame));
}

TEST(BuildTcpFrame, PayloadIncludedInLengthAndChecksum) {
  auto spec = sample_spec();
  spec.payload = {1, 2, 3, 4, 5};
  const auto frame = build_tcp_frame(spec);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload_length, 5u);
  EXPECT_TRUE(verify_tcp_checksum(frame));
}

TEST(BuildUdpFrame, ProducesDecodableFrame) {
  UdpFrameSpec spec;
  spec.src_ip = Ipv4Address::from_octets(9, 9, 9, 9);
  spec.dst_ip = Ipv4Address::from_octets(198, 51, 0, 1);
  spec.src_port = 53;
  spec.dst_port = 123;
  spec.payload = {0xde, 0xad};
  const auto frame = build_udp_frame(spec);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_NE(decoded->udp(), nullptr);
  EXPECT_EQ(decoded->udp()->destination_port, 123);
  EXPECT_EQ(decoded->payload_length, 2u);
}

TEST(DecodeFrame, RejectsNonIpv4EtherType) {
  auto frame = build_tcp_frame(sample_spec());
  frame[12] = 0x86;  // IPv6 EtherType
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_frame(frame).has_value());
}

TEST(DecodeFrame, RejectsTruncatedIpHeader) {
  auto frame = build_tcp_frame(sample_spec());
  frame.resize(EthernetHeader::kSize + 10);
  EXPECT_FALSE(decode_frame(frame).has_value());
}

TEST(DecodeFrame, TruncatedTransportDecodesWithEmptyTransport) {
  auto frame = build_tcp_frame(sample_spec());
  // Keep the IP header but cut into the TCP header. total_length still
  // claims a full segment; available bytes rule.
  frame.resize(EthernetHeader::kSize + Ipv4Header::kMinSize + 8);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp(), nullptr);
}

TEST(DecodeFrame, LaterFragmentHasNoTransport) {
  auto spec = sample_spec();
  auto frame = build_tcp_frame(spec);
  // Rewrite fragment offset to non-zero and fix the IP checksum.
  auto* ip = frame.data() + EthernetHeader::kSize;
  ip[6] = 0x00;
  ip[7] = 0x10;  // offset 16 (x8 bytes)
  ip[10] = 0;
  ip[11] = 0;
  const auto checksum = internet_checksum({ip, Ipv4Header::kMinSize});
  ip[10] = static_cast<std::uint8_t>(checksum >> 8);
  ip[11] = static_cast<std::uint8_t>(checksum & 0xff);

  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ip.is_later_fragment());
  EXPECT_EQ(decoded->tcp(), nullptr);
}

TEST(DecodeFrame, EthernetPaddingIsIgnored) {
  auto frame = build_tcp_frame(sample_spec());
  frame.resize(frame.size() + 6, 0);  // trailing pad below 64-byte minimum
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_NE(decoded->tcp(), nullptr);
  EXPECT_EQ(decoded->payload_length, 0u);
}

TEST(DecodeFrame, UnknownIpProtocolDecodesWithEmptyTransport) {
  auto frame = build_tcp_frame(sample_spec());
  auto* ip = frame.data() + EthernetHeader::kSize;
  ip[9] = 47;  // GRE
  ip[10] = 0;
  ip[11] = 0;
  const auto checksum = internet_checksum({ip, Ipv4Header::kMinSize});
  ip[10] = static_cast<std::uint8_t>(checksum >> 8);
  ip[11] = static_cast<std::uint8_t>(checksum & 0xff);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp(), nullptr);
  EXPECT_EQ(decoded->udp(), nullptr);
  EXPECT_EQ(decoded->icmp(), nullptr);
}

}  // namespace
}  // namespace synscan::net
