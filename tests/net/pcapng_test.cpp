#include "pcap/pcapng.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

namespace fs = std::filesystem;

/// Byte-level pcapng builder for tests.
class NgBuilder {
 public:
  explicit NgBuilder(bool big_endian = false) : big_endian_(big_endian) {}

  NgBuilder& section_header() {
    std::vector<std::uint8_t> body;
    u32(body, 0x1A2B3C4D);  // byte-order magic
    u16(body, 1);           // major
    u16(body, 0);           // minor
    u64(body, 0xffffffffffffffffull);  // section length: unknown
    block(0x0A0D0D0A, body);
    return *this;
  }

  /// Adds an IDB; tsresol 6 = microseconds, 9 = nanoseconds, 0x80|n = 2^-n.
  NgBuilder& interface_block(std::uint8_t tsresol = 6) {
    std::vector<std::uint8_t> body;
    u16(body, 1);  // LINKTYPE_ETHERNET
    u16(body, 0);  // reserved
    u32(body, 65535);  // snaplen
    // if_tsresol option.
    u16(body, 9);
    u16(body, 1);
    body.push_back(tsresol);
    body.insert(body.end(), 3, 0);  // pad to 32 bits
    // opt_endofopt.
    u16(body, 0);
    u16(body, 0);
    block(1, body);
    return *this;
  }

  NgBuilder& enhanced_packet(std::uint32_t interface_id, std::uint64_t ticks,
                             std::vector<std::uint8_t> data) {
    std::vector<std::uint8_t> body;
    u32(body, interface_id);
    u32(body, static_cast<std::uint32_t>(ticks >> 32));
    u32(body, static_cast<std::uint32_t>(ticks & 0xffffffff));
    u32(body, static_cast<std::uint32_t>(data.size()));  // captured
    u32(body, static_cast<std::uint32_t>(data.size()));  // original
    body.insert(body.end(), data.begin(), data.end());
    while (body.size() % 4 != 0) body.push_back(0);
    block(6, body);
    return *this;
  }

  NgBuilder& simple_packet(std::vector<std::uint8_t> data) {
    std::vector<std::uint8_t> body;
    u32(body, static_cast<std::uint32_t>(data.size()));
    body.insert(body.end(), data.begin(), data.end());
    while (body.size() % 4 != 0) body.push_back(0);
    block(3, body);
    return *this;
  }

  NgBuilder& unknown_block() {
    std::vector<std::uint8_t> body = {1, 2, 3, 4, 5, 6, 7, 8};
    block(0x0BAD0000, body);
    return *this;
  }

  void write(const fs::path& path) const {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  void u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    std::uint8_t b[2];
    big_endian_ ? net::store_be16(b, v) : net::store_le16(b, v);
    out.insert(out.end(), b, b + 2);
  }
  void u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    std::uint8_t b[4];
    big_endian_ ? net::store_be32(b, v) : net::store_le32(b, v);
    out.insert(out.end(), b, b + 4);
  }
  void u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    u32(out, static_cast<std::uint32_t>(big_endian_ ? v >> 32 : v & 0xffffffff));
    u32(out, static_cast<std::uint32_t>(big_endian_ ? v & 0xffffffff : v >> 32));
  }
  void block(std::uint32_t type, const std::vector<std::uint8_t>& body) {
    const auto total = static_cast<std::uint32_t>(12 + body.size());
    u32(bytes_, type);
    u32(bytes_, total);
    bytes_.insert(bytes_.end(), body.begin(), body.end());
    u32(bytes_, total);
  }

  bool big_endian_;
  std::vector<std::uint8_t> bytes_;
};

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "synscan_pcapng_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] fs::path path(const char* name) const { return dir_ / name; }
  fs::path dir_;
};

TEST_F(PcapngTest, ReadsEnhancedPackets) {
  NgBuilder builder;
  builder.section_header()
      .interface_block(6)
      .enhanced_packet(0, 5'000'123, {0xaa, 0xbb, 0xcc})
      .enhanced_packet(0, 6'000'456, {0x01});
  builder.write(path("basic.pcapng"));

  auto reader = NgReader::open(path("basic.pcapng"));
  auto [frames, status] = reader.read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].timestamp_us, 5'000'123);  // µs resolution: ticks are µs
  EXPECT_EQ(frames[0].bytes, (std::vector<std::uint8_t>{0xaa, 0xbb, 0xcc}));
  EXPECT_EQ(frames[1].timestamp_us, 6'000'456);
  EXPECT_EQ(reader.interfaces_seen(), 1u);
}

TEST_F(PcapngTest, NanosecondResolutionNormalizes) {
  NgBuilder builder;
  builder.section_header().interface_block(9).enhanced_packet(
      0, 1'500'000'789ull, {0x42});  // 1.500000789 s in ns ticks
  builder.write(path("ns.pcapng"));
  auto reader = NgReader::open(path("ns.pcapng"));
  net::RawFrame frame;
  ASSERT_EQ(reader.next(frame), ReadStatus::kOk);
  EXPECT_EQ(frame.timestamp_us, 1'500'000);
}

TEST_F(PcapngTest, Power2ResolutionNormalizes) {
  // tsresol 0x8A = 2^-10 ticks (1024 per second).
  NgBuilder builder;
  builder.section_header().interface_block(0x8A).enhanced_packet(0, 2048, {0x42});
  builder.write(path("p2.pcapng"));
  auto reader = NgReader::open(path("p2.pcapng"));
  net::RawFrame frame;
  ASSERT_EQ(reader.next(frame), ReadStatus::kOk);
  EXPECT_EQ(frame.timestamp_us, 2 * net::kMicrosPerSecond);
}

TEST_F(PcapngTest, SimplePacketBlocksWork) {
  NgBuilder builder;
  builder.section_header().interface_block().simple_packet({9, 8, 7, 6, 5});
  builder.write(path("spb.pcapng"));
  auto [frames, status] = NgReader::open(path("spb.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].bytes.size(), 5u);
  EXPECT_EQ(frames[0].timestamp_us, 0);
}

TEST_F(PcapngTest, UnknownBlocksAreSkipped) {
  NgBuilder builder;
  builder.section_header()
      .interface_block()
      .unknown_block()
      .enhanced_packet(0, 1, {0x11})
      .unknown_block();
  builder.write(path("mixed.pcapng"));
  auto [frames, status] = NgReader::open(path("mixed.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  EXPECT_EQ(frames.size(), 1u);
}

TEST_F(PcapngTest, BigEndianSections) {
  NgBuilder builder(/*big_endian=*/true);
  builder.section_header().interface_block(6).enhanced_packet(0, 777, {0x01, 0x02});
  builder.write(path("be.pcapng"));
  auto [frames, status] = NgReader::open(path("be.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].timestamp_us, 777);
}

TEST_F(PcapngTest, RejectsNonPcapng) {
  std::ofstream out(path("junk.pcapng"), std::ios::binary);
  out << "definitely not a capture";
  out.close();
  EXPECT_THROW((void)NgReader::open(path("junk.pcapng")), std::runtime_error);
}

TEST_F(PcapngTest, TruncatedBlockReported) {
  NgBuilder builder;
  builder.section_header().interface_block().enhanced_packet(0, 1, {1, 2, 3, 4});
  builder.write(path("trunc.pcapng"));
  fs::resize_file(path("trunc.pcapng"), fs::file_size(path("trunc.pcapng")) - 6);
  auto [frames, status] = NgReader::open(path("trunc.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kTruncated);
  EXPECT_TRUE(frames.empty());
}

TEST_F(PcapngTest, CorruptTrailerIsBadRecord) {
  NgBuilder builder;
  builder.section_header().interface_block().enhanced_packet(0, 1, {1, 2, 3, 4});
  builder.write(path("bad.pcapng"));
  // Flip a byte in the trailing total-length of the last block.
  std::fstream file(path("bad.pcapng"), std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(-2, std::ios::end);
  file.put(static_cast<char>(0x5a));
  file.close();
  auto [frames, status] = NgReader::open(path("bad.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kBadRecord);
}

TEST_F(PcapngTest, MultipleSectionsResetInterfaces) {
  NgBuilder builder;
  builder.section_header()
      .interface_block(6)
      .enhanced_packet(0, 10, {1})
      .section_header()
      .interface_block(9)  // new section: ns resolution
      .enhanced_packet(0, 3'000, {2});
  builder.write(path("sections.pcapng"));
  auto [frames, status] = NgReader::open(path("sections.pcapng")).read_all();
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].timestamp_us, 10);  // µs ticks
  EXPECT_EQ(frames[1].timestamp_us, 3);   // ns ticks -> 3 µs
}

TEST_F(PcapngTest, FormatDispatchReadsBoth) {
  // pcapng...
  NgBuilder builder;
  builder.section_header().interface_block().enhanced_packet(0, 1, {0x77});
  builder.write(path("dispatch.pcapng"));
  EXPECT_TRUE(looks_like_pcapng(path("dispatch.pcapng")));
  auto [ng_frames, ng_status] = read_any_capture(path("dispatch.pcapng"));
  EXPECT_EQ(ng_frames.size(), 1u);

  // ...and classic pcap through the same entry point.
  const std::vector<net::RawFrame> classic = {{123, {0x01, 0x02}}};
  write_file(path("dispatch.pcap"), classic);
  EXPECT_FALSE(looks_like_pcapng(path("dispatch.pcap")));
  auto [frames, status] = read_any_capture(path("dispatch.pcap"));
  EXPECT_EQ(status, ReadStatus::kEndOfFile);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].timestamp_us, 123);
}

}  // namespace
}  // namespace synscan::pcap
