// Robustness sweeps: the decoder and sensor must never misbehave on
// arbitrary bytes — a telescope parses billions of untrusted frames.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "simgen/rng.h"
#include "telescope/sensor.h"

namespace synscan::net {
namespace {

class DecodeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashTheDecoder) {
  simgen::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform(128));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = decode_frame(bytes);
    if (decoded && decoded->tcp() != nullptr) {
      // Whatever decoded must at least be self-consistent.
      EXPECT_GE(decoded->ip.total_length, decoded->ip.header_length());
      EXPECT_GE(decoded->tcp()->data_offset, 5);
    }
  }
}

TEST_P(DecodeFuzzTest, BitFlippedValidFramesNeverCrash) {
  simgen::Rng rng(GetParam() ^ 0xf1f1);
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address::from_octets(5, 5, 5, 5);
  spec.dst_ip = Ipv4Address::from_octets(198, 51, 0, 1);
  spec.dst_port = 443;
  const auto pristine = build_tcp_frame(spec);
  for (int trial = 0; trial < 2000; ++trial) {
    auto frame = pristine;
    const auto flips = 1 + rng.uniform(8);
    for (std::uint64_t i = 0; i < flips; ++i) {
      frame[rng.uniform(frame.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    (void)decode_frame(frame);
    (void)verify_tcp_checksum(frame);
  }
}

TEST_P(DecodeFuzzTest, TruncationsAtEveryLengthNeverCrash) {
  TcpFrameSpec spec;
  spec.src_ip = Ipv4Address::from_octets(5, 5, 5, 5);
  spec.dst_ip = Ipv4Address::from_octets(198, 51, 0, 1);
  spec.dst_port = 80;
  spec.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto full = build_tcp_frame(spec);
  for (std::size_t length = 0; length <= full.size(); ++length) {
    const std::span<const std::uint8_t> prefix(full.data(), length);
    (void)decode_frame(prefix);
  }
}

TEST_P(DecodeFuzzTest, SensorTotalsStayConsistentUnderFuzz) {
  simgen::Rng rng(GetParam() ^ 0x5e50);
  const telescope::Telescope telescope(
      {{*Ipv4Prefix::parse("198.51.0.0/24"), 1000}}, {});
  telescope::Sensor sensor(telescope);
  telescope::ScanProbe probe;
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    net::RawFrame frame;
    frame.timestamp_us = trial;
    frame.bytes.resize(rng.uniform(96));
    for (auto& b : frame.bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)sensor.classify(frame, probe);
  }
  EXPECT_EQ(sensor.counters().total(), static_cast<std::uint64_t>(kTrials));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace synscan::net
