// Integration: the instrumented pipeline populates the global registry
// end-to-end, the invariants between stages hold, and every metric name
// documented in docs/OBSERVABILITY.md is actually shipped.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "obs/run_report.h"
#include "pcap/pcap.h"
#include "simgen/generator.h"
#include "test_support.h"

namespace synscan {
namespace {

const telescope::Telescope& test_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/20"), 1000}}, {});
  return telescope;
}

simgen::YearConfig small_config() {
  simgen::YearConfig config;
  config.year = 2021;
  config.window_days = 1;
  config.seed = 4242;
  config.port_table = {{80, 70}, {443, 30}};
  config.noise_sources = 10;
  config.backscatter_fraction = 0.1;

  simgen::GroupSpec group;
  group.name = "obs-group";
  group.tool = simgen::WireTool::kZmap;
  group.pool = enrich::ScannerType::kHosting;
  group.sources = 4;
  group.campaigns = 4;
  group.hits_median = 250;
  group.hits_sigma = 1.1;
  group.pps_median = 500000;
  group.pps_sigma = 1.1;
  config.groups.push_back(group);
  return config;
}

/// Every test here drives the *global* registry, exactly like the CLI
/// and benches do; serialize access and leave a clean slate behind.
class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().clear();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::MetricsRegistry::global().clear();
  }
};

std::uint64_t global_counter(const std::string& name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

TEST_F(ObsIntegration, SensorProbesEqualTrackerProbes) {
  core::Pipeline pipeline(test_telescope());
  simgen::TrafficGenerator generator(small_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  const auto report = obs::RunReport::capture("integration", &result);

  // Every probe the sensor forwarded reached the tracker: the paper's
  // pipeline loses nothing between §3.2 classification and §3.4
  // campaign tracking.
  ASSERT_GT(result.sensor.scan_probes, 0u);
  EXPECT_EQ(global_counter("sensor.scan_probes"), result.sensor.scan_probes);
  EXPECT_EQ(global_counter("tracker.probes"), result.tracker.probes);
  EXPECT_EQ(global_counter("sensor.scan_probes"), global_counter("tracker.probes"));
  // The pipeline-level tallies agree with the stage-level ones.
  EXPECT_EQ(global_counter("pipeline.probes"), result.sensor.scan_probes);
  EXPECT_GT(global_counter("pipeline.frames"), 0u);

  // The captured report carries the same numbers.
  bool found = false;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name == "sensor.scan_probes") {
      EXPECT_EQ(value, result.sensor.scan_probes);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsIntegration, ParallelAnalyzerPublishesWorkerMetrics) {
  constexpr std::size_t kWorkers = 3;
  core::ParallelAnalyzer analyzer(test_telescope(), kWorkers);
  simgen::TrafficGenerator generator(small_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  const auto stats =
      generator.run([&](const net::RawFrame& f) { analyzer.feed_frame(f); });
  const auto result = analyzer.finish();

  auto& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.gauge("parallel.workers").value(),
            static_cast<std::int64_t>(kWorkers));
  // Every decodable frame was dispatched to exactly one worker.
  EXPECT_EQ(global_counter("parallel.items") + global_counter("parallel.undecodable"),
            stats.total_frames);
  EXPECT_GT(global_counter("parallel.batches"), 0u);
  EXPECT_GT(registry.histogram("parallel.batch_items").data().count, 0u);
  for (std::size_t i = 0; i < kWorkers; ++i) {
    const auto prefix = "parallel.worker." + std::to_string(i);
    EXPECT_TRUE(registry.contains(prefix + ".items")) << prefix;
    EXPECT_TRUE(registry.contains(prefix + ".peak_queue")) << prefix;
  }
  EXPECT_GT(registry.timing("parallel.merge").data().count, 0u);

  // Tracker merge preserved the new counters.
  EXPECT_EQ(result.tracker.probes, result.sensor.scan_probes);
}

TEST_F(ObsIntegration, PcapReaderCountsFramesAndBytes) {
  const auto path = std::filesystem::temp_directory_path() / "synscan_obs_test.pcap";
  std::vector<net::RawFrame> frames;
  for (int i = 0; i < 32; ++i) {
    frames.push_back({static_cast<net::TimeUs>(i) * 1000,
                      testing::syn_frame(net::Ipv4Address::from_octets(5, 6, 7, 8),
                                         net::Ipv4Address::from_octets(198, 51, 0, 1),
                                         80)});
  }
  pcap::write_file(path, frames);

  auto reader = pcap::Reader::open(path);
  const auto [read, status] = reader.read_all();
  std::filesystem::remove(path);

  ASSERT_EQ(status, pcap::ReadStatus::kEndOfFile);
  EXPECT_EQ(global_counter("pcap.frames"), frames.size());
  EXPECT_GT(global_counter("pcap.bytes"), 0u);
  EXPECT_EQ(global_counter("pcap.truncated"), 0u);
  EXPECT_EQ(global_counter("pcap.bad_records"), 0u);
}

TEST_F(ObsIntegration, TrackerExposesFlowTableLifecycle) {
  core::TrackerConfig config;
  config.sweep_interval = 64;
  core::Pipeline pipeline(test_telescope(), config);
  simgen::TrafficGenerator generator(small_config(), test_telescope(),
                                     enrich::InternetRegistry::synthetic_default());
  generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  EXPECT_GT(result.tracker.peak_open_flows, 0u);
  EXPECT_GT(result.tracker.sweeps, 0u);
  // Every flow closed by inactivity ended up classified as a campaign or
  // sub-threshold, so expirations never exceed total closed flows.
  EXPECT_LE(result.tracker.expired_flows,
            result.tracker.campaigns + result.tracker.subthreshold_flows);
  // The high-water mark is bounded by the probes that could open flows.
  EXPECT_LE(result.tracker.peak_open_flows, result.tracker.probes);
}

// --- documentation consistency -------------------------------------------

// The code↔doc metric-name comparison itself lives in the project
// linter (tools/lint/synscan_lint.py, rule `metric-doc-sync`), so the
// same check guards both `ctest` and `scripts/lint.sh`. This test is a
// thin wrapper: doc/code drift fails here too.
TEST_F(ObsIntegration, DocumentedMetricNamesMatchShippedCode) {
  const auto repo = std::filesystem::path(SYNSCAN_SOURCE_DIR);
  const auto linter = repo / "tools" / "lint" / "synscan_lint.py";
  ASSERT_TRUE(std::filesystem::exists(linter)) << linter;

  const std::string command = "python3 \"" + linter.string() + "\" --repo \"" +
                              repo.string() +
                              "\" --rule metric-doc-sync --min-doc-names 20";
  EXPECT_EQ(std::system(command.c_str()), 0)
      << "metric-doc-sync lint failed; run: " << command;
}

}  // namespace
}  // namespace synscan
