// Unit tests for the observability primitives: metric cells, the
// registry, and RAII stage timers.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/timer.h"

namespace synscan::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  auto& counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Counter, StorePublishesExternalTally) {
  Counter counter;
  counter.add(3);
  counter.store(42);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, RecordMaxKeepsHighWaterMark) {
  Gauge gauge;
  gauge.record_max(5);
  gauge.record_max(3);
  EXPECT_EQ(gauge.value(), 5);
  gauge.record_max(9);
  EXPECT_EQ(gauge.value(), 9);
  gauge.store(-2);
  EXPECT_EQ(gauge.value(), -2);
}

TEST(Gauge, ConcurrentRecordMaxConverges) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10'000; ++i) gauge.record_max(t * 10'000 + i);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 3 * 10'000 + 9'999);
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram histogram;
  for (const std::uint64_t sample : {1u, 2u, 4u, 1024u}) histogram.observe(sample);
  const auto data = histogram.data();
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 1031u);
  EXPECT_EQ(data.min, 1u);
  EXPECT_EQ(data.max, 1024u);
  EXPECT_DOUBLE_EQ(data.mean(), 1031.0 / 4.0);
}

TEST(Histogram, QuantilesAreMonotoneAndBounded) {
  Histogram histogram;
  for (std::uint64_t i = 0; i < 1000; ++i) histogram.observe(i);
  const auto data = histogram.data();
  const auto p50 = data.quantile(0.50);
  const auto p90 = data.quantile(0.90);
  const auto p99 = data.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, data.max);
  // Log2 buckets: p50 of U[0,1000) lands in [256, 1024).
  EXPECT_GE(p50, 256u);
}

TEST(Histogram, EmptyDataIsZero) {
  Histogram histogram;
  const auto data = histogram.data();
  EXPECT_EQ(data.count, 0u);
  EXPECT_EQ(data.min, 0u);
  EXPECT_EQ(data.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(data.mean(), 0.0);
}

TEST(Timing, AccumulatesSpans) {
  Timing timing;
  timing.record(100, 80);
  timing.record(300, 250);
  const auto data = timing.data();
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.wall_us, 400u);
  EXPECT_EQ(data.cpu_us, 330u);
  EXPECT_EQ(data.max_wall_us, 300u);
}

TEST(MetricsRegistry, SameNameReturnsSameCell) {
  MetricsRegistry registry;
  auto& a = registry.counter("x.y");
  auto& b = registry.counter("x.y");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(MetricsRegistry, KindsAreSeparateNamespaces) {
  MetricsRegistry registry;
  registry.counter("dual").add(1);
  registry.gauge("dual").store(5);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 5);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.counter("m.middle").add(3);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "m.middle");
  EXPECT_EQ(snapshot.counters[2].first, "z.last");
}

TEST(MetricsRegistry, NamesAndContains) {
  MetricsRegistry registry;
  registry.counter("c");
  registry.gauge("g");
  registry.histogram("h");
  registry.timing("t");
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"c", "g", "h", "t"}));
  EXPECT_TRUE(registry.contains("h"));
  EXPECT_FALSE(registry.contains("missing"));
}

TEST(MetricsRegistry, ResetValuesKeepsCells) {
  MetricsRegistry registry;
  auto& counter = registry.counter("keep.me");
  counter.add(9);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_TRUE(registry.contains("keep.me"));
  counter.add(1);  // the cell is still live
  EXPECT_EQ(counter.value(), 1u);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared." + std::to_string(i % 10)).add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total = 0;
  for (const auto& [name, value] : registry.snapshot().counters) total += value;
  EXPECT_EQ(total, 8u * 1000u);
}

class ScopedTimerTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(false); }
  MetricsRegistry registry_;
};

TEST_F(ScopedTimerTest, RecordsWallAndCpu) {
  {
    const ScopedTimer timer(registry_, "span.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto data = registry_.timing("span.outer").data();
  EXPECT_EQ(data.count, 1u);
  EXPECT_GE(data.wall_us, 5'000u);
  EXPECT_EQ(data.max_wall_us, data.wall_us);
  // The span slept, so CPU time must be well below wall time.
  EXPECT_LE(data.cpu_us, data.wall_us);
}

TEST_F(ScopedTimerTest, NestedSpansEachRecordAndOuterDominates) {
  {
    const ScopedTimer outer(registry_, "span.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const ScopedTimer inner(registry_, "span.outer.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto outer = registry_.timing("span.outer").data();
  const auto inner = registry_.timing("span.outer.inner").data();
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // A span's wall time includes the spans it encloses.
  EXPECT_GE(outer.wall_us, inner.wall_us);
  EXPECT_GE(inner.wall_us, 2'000u);
}

TEST_F(ScopedTimerTest, ReentrantSpansAccumulate) {
  for (int i = 0; i < 3; ++i) {
    const ScopedTimer timer(registry_, "span.repeated");
  }
  EXPECT_EQ(registry_.timing("span.repeated").data().count, 3u);
}

TEST_F(ScopedTimerTest, StopIsIdempotent) {
  ScopedTimer timer(registry_, "span.stopped");
  timer.stop();
  timer.stop();
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(registry_.timing("span.stopped").data().count, 1u);
}

TEST(ScopedTimerDisabled, IsInertAndRegistersNothing) {
  ASSERT_FALSE(enabled());
  MetricsRegistry registry;
  {
    const ScopedTimer timer(registry, "span.never");
    EXPECT_FALSE(timer.active());
  }
  EXPECT_FALSE(registry.contains("span.never"));
}

}  // namespace
}  // namespace synscan::obs
