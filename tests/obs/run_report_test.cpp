// RunReport: publishing pipeline counters into the registry, JSON
// serialization round-trip, and ASCII rendering.
#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace synscan::obs {
namespace {

telescope::SensorCounters sample_sensor() {
  telescope::SensorCounters counters;
  counters.scan_probes = 100;
  counters.backscatter = 20;
  counters.udp = 7;
  counters.malformed = 1;
  return counters;
}

core::TrackerCounters sample_tracker() {
  core::TrackerCounters counters;
  counters.probes = 100;
  counters.campaigns = 3;
  counters.subthreshold_flows = 12;
  counters.subthreshold_packets = 50;
  counters.expired_flows = 4;
  counters.sweeps = 2;
  counters.peak_open_flows = 17;
  return counters;
}

TEST(Publish, SensorCountersLandUnderCanonicalNames) {
  MetricsRegistry registry;
  publish(registry, sample_sensor());
  EXPECT_EQ(registry.counter("sensor.scan_probes").value(), 100u);
  EXPECT_EQ(registry.counter("sensor.backscatter").value(), 20u);
  EXPECT_EQ(registry.counter("sensor.udp").value(), 7u);
  EXPECT_EQ(registry.counter("sensor.malformed").value(), 1u);
  EXPECT_EQ(registry.counter("sensor.not_monitored").value(), 0u);
}

TEST(Publish, IsAdditiveAcrossWindows) {
  MetricsRegistry registry;
  publish(registry, sample_sensor());
  publish(registry, sample_sensor());
  EXPECT_EQ(registry.counter("sensor.scan_probes").value(), 200u);
}

TEST(Publish, TrackerCountersIncludeFlowTableStats) {
  MetricsRegistry registry;
  publish(registry, sample_tracker());
  EXPECT_EQ(registry.counter("tracker.probes").value(), 100u);
  EXPECT_EQ(registry.counter("tracker.campaigns").value(), 3u);
  EXPECT_EQ(registry.counter("tracker.expired_flows").value(), 4u);
  EXPECT_EQ(registry.counter("tracker.sweeps").value(), 2u);
  EXPECT_EQ(registry.gauge("tracker.peak_open_flows").value(), 17);
}

TEST(RunReport, CaptureFoldsResultCounters) {
  MetricsRegistry registry;
  core::PipelineResult result;
  result.sensor = sample_sensor();
  result.tracker = sample_tracker();
  const auto report = RunReport::capture("unit", &result, registry);
  EXPECT_EQ(report.label, "unit");
  bool found = false;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name == "sensor.scan_probes") {
      EXPECT_EQ(value, 100u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

RunReport sample_report() {
  MetricsRegistry registry;
  publish(registry, sample_sensor());
  publish(registry, sample_tracker());
  registry.gauge("parallel.workers").store(4);
  registry.timing("analyze.ingest").record(1234, 1100);
  auto& histogram = registry.histogram("parallel.batch_items");
  for (const std::uint64_t sample : {1u, 16u, 256u, 256u, 300u}) {
    histogram.observe(sample);
  }
  return RunReport::capture("round-trip \"label\"", nullptr, registry);
}

TEST(RunReport, JsonRoundTripIsExact) {
  const auto report = sample_report();
  const auto json = report.to_json();

  const auto parsed = RunReport::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->label, report.label);
  EXPECT_EQ(parsed->metrics.counters, report.metrics.counters);
  EXPECT_EQ(parsed->metrics.gauges, report.metrics.gauges);
  // Serialize again: byte-identical (timings and histogram buckets
  // survive, derived quantiles are recomputed from the buckets).
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(RunReport, JsonContainsSchemaAndSections) {
  const auto json = sample_report().to_json();
  EXPECT_NE(json.find("\"schema\":\"synscan.run_report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"timings\":{"), std::string::npos);
  EXPECT_NE(json.find("\"sensor.scan_probes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":1234"), std::string::npos);
}

TEST(RunReport, FromJsonRejectsGarbage) {
  EXPECT_FALSE(RunReport::from_json("").has_value());
  EXPECT_FALSE(RunReport::from_json("{}").has_value());  // no schema
  EXPECT_FALSE(RunReport::from_json("not json at all").has_value());
  EXPECT_FALSE(
      RunReport::from_json("{\"schema\":\"synscan.run_report/999\"}").has_value());
}

TEST(RunReport, EmptyRegistrySerializesAndParses) {
  MetricsRegistry registry;
  const auto report = RunReport::capture("empty", nullptr, registry);
  const auto parsed = RunReport::from_json(report.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->metrics.empty());
}

TEST(RunReport, TableListsMetricsAndStages) {
  const auto table = sample_report().to_table();
  EXPECT_NE(table.find("sensor.scan_probes"), std::string::npos);
  EXPECT_NE(table.find("tracker.peak_open_flows (gauge)"), std::string::npos);
  EXPECT_NE(table.find("-- stage timings --"), std::string::npos);
  EXPECT_NE(table.find("analyze.ingest"), std::string::npos);
  EXPECT_NE(table.find("-- distributions --"), std::string::npos);
  EXPECT_NE(table.find("parallel.batch_items"), std::string::npos);
}

}  // namespace
}  // namespace synscan::obs
